// DRAM budget accounting for the streaming data path.
//
// The paper's ISPS processes a 24 TB flash array with 8 GB of DDR4 — only
// possible because no stage ever buffers a whole file. MemoryBudget makes
// that constraint explicit: every retained buffer on a platform (chunk
// buffers, pipe rings, gathered line sets) reserves against the platform's
// DRAM size and fails with kResourceExhausted instead of growing unbounded.
// The high-water mark is exported as a telemetry gauge (`<prefix>.mem.*`).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/status.hpp"

namespace compstor {

/// Thread-safe byte budget with a high-water mark. `limit() == 0` means
/// unlimited (accounting only), which keeps bare test fixtures permissive.
class MemoryBudget {
 public:
  explicit MemoryBudget(std::uint64_t limit_bytes = 0) : limit_(limit_bytes) {}

  /// Reserves `bytes`; fails without side effects when the limit would be
  /// exceeded.
  Status Reserve(std::uint64_t bytes) {
    const std::uint64_t limit = limit_.load(std::memory_order_relaxed);
    const std::uint64_t now =
        used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limit != 0 && now > limit) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return ResourceExhausted("memory budget exceeded: " + std::to_string(now) +
                               " > " + std::to_string(limit) + " bytes");
    }
    std::uint64_t hw = highwater_.load(std::memory_order_relaxed);
    while (now > hw &&
           !highwater_.compare_exchange_weak(hw, now, std::memory_order_relaxed)) {
    }
    return OkStatus();
  }

  void Release(std::uint64_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  std::uint64_t highwater() const {
    return highwater_.load(std::memory_order_relaxed);
  }
  std::uint64_t limit() const { return limit_.load(std::memory_order_relaxed); }
  void set_limit(std::uint64_t bytes) {
    limit_.store(bytes, std::memory_order_relaxed);
  }

  /// Clears the high-water mark (between measured bench phases). Live
  /// reservations are kept.
  void ResetHighwater() {
    highwater_.store(used_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> limit_;
  std::atomic<std::uint64_t> used_{0};
  std::atomic<std::uint64_t> highwater_{0};
};

/// RAII handle over a growing reservation; releases everything on
/// destruction. A null budget makes every operation a no-op.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  explicit MemoryReservation(MemoryBudget* budget) : budget_(budget) {}
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;
  MemoryReservation(MemoryReservation&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      ReleaseAll();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ~MemoryReservation() { ReleaseAll(); }

  void Attach(MemoryBudget* budget) {
    ReleaseAll();
    budget_ = budget;
  }

  Status Grow(std::uint64_t bytes) {
    if (budget_ != nullptr) {
      COMPSTOR_RETURN_IF_ERROR(budget_->Reserve(bytes));
    }
    bytes_ += bytes;
    return OkStatus();
  }

  void ReleaseAll() {
    if (budget_ != nullptr && bytes_ > 0) budget_->Release(bytes_);
    bytes_ = 0;
  }

  std::uint64_t bytes() const { return bytes_; }

 private:
  MemoryBudget* budget_ = nullptr;
  std::uint64_t bytes_ = 0;
};

}  // namespace compstor
