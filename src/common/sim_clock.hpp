// Virtual-time accounting for the performance model.
//
// Real hardware timing cannot be measured on an emulator, so every modeled
// resource (an ISPS core, a flash channel, the PCIe link, a host core) owns a
// VirtualClock that is *advanced* by the cost model as work is attributed to
// it. A group of parallel resources composes into a makespan via MaxTime().
//
// Clocks are atomic because the functional emulation runs work on real
// threads; attribution happens concurrently with execution.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace compstor {

/// Seconds -> nanosecond ticks, rounded to nearest. Truncation would drop the
/// fractional nanosecond of every charge, and the cost model issues millions
/// of sub-microsecond charges per bench — the undercount compounds.
inline std::uint64_t ToNanoTicks(units::Seconds s) {
  return static_cast<std::uint64_t>(std::llround(s * 1e9));
}

/// Monotonic virtual clock, nanosecond resolution internally.
class VirtualClock {
 public:
  VirtualClock() = default;

  /// Advances this clock by `s` model-seconds. Negative advances are clamped
  /// to zero (cost formulas can round to tiny negatives).
  void Advance(units::Seconds s) {
    if (s <= 0) return;
    nanos_.fetch_add(ToNanoTicks(s), std::memory_order_relaxed);
  }

  /// Moves the clock forward to at least `s` model-seconds (used when a
  /// resource must wait for an event that completes at absolute time `s`).
  void AdvanceTo(units::Seconds s) {
    const std::uint64_t target = ToNanoTicks(s);
    std::uint64_t cur = nanos_.load(std::memory_order_relaxed);
    while (cur < target &&
           !nanos_.compare_exchange_weak(cur, target, std::memory_order_relaxed)) {
    }
  }

  units::Seconds Now() const {
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }

  /// Raw nanosecond ticks — the exact representation, for trace timestamps
  /// that must nest without floating-point rounding at the boundaries.
  std::uint64_t NowNanos() const { return nanos_.load(std::memory_order_relaxed); }

  void Reset() { nanos_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> nanos_{0};
};

/// Makespan of a set of parallel virtual timelines.
units::Seconds MaxTime(const std::vector<const VirtualClock*>& clocks);

/// Simple busy-time accumulator for modeling utilization of a shared resource
/// (flash channel, link). Busy seconds accumulate; utilization = busy / span.
class BusyMeter {
 public:
  void AddBusy(units::Seconds s) {
    if (s <= 0) return;
    busy_nanos_.fetch_add(ToNanoTicks(s), std::memory_order_relaxed);
  }
  units::Seconds BusySeconds() const {
    return static_cast<double>(busy_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }
  void Reset() { busy_nanos_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> busy_nanos_{0};
};

}  // namespace compstor
