#include "common/qos.hpp"

namespace compstor::qos {

namespace {
thread_local TenantContext t_current_tenant;
}  // namespace

const TenantContext& CurrentTenant() { return t_current_tenant; }

ScopedTenant::ScopedTenant(const TenantContext& tenant) : saved_(t_current_tenant) {
  t_current_tenant = tenant;
}

ScopedTenant::~ScopedTenant() { t_current_tenant = saved_; }

}  // namespace compstor::qos
