#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace compstor {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    default: return "?";
  }
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

void EmitLogLine(LogLevel level, const std::string& line) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), line.c_str());
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Strip directories: the basename is enough to locate the site.
  const char* base = file;
  for (const char* p = file; *p; ++p)
    if (*p == '/') base = p + 1;
  stream_ << base << ':' << line << "] ";
}

LogMessage::~LogMessage() { EmitLogLine(level_, stream_.str()); }

}  // namespace internal
}  // namespace compstor
