// Per-filesystem registry of open KV stores.
//
// Minion invocations are short-lived but an LSM store must stay open across
// them (re-opening per batch would replay the WAL per request). The ISPS
// task runtime owns one StoreManager over its internal filesystem view, so
// every kv minion and kStats/kKv query on a device shares one store instance
// per directory — matching how an embedded KV service would run inside the
// drive.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.hpp"
#include "kv/kv_store.hpp"

namespace compstor::kv {

class StoreManager {
 public:
  StoreManager(fs::Filesystem* fs, MemoryBudget* budget)
      : fs_(fs), budget_(budget) {}

  /// Returns the open store at `dir`, opening (and recovering) it on first
  /// use. The returned pointer stays valid until DropAll().
  Result<KvStore*> Acquire(const std::string& dir,
                           const KvOptions& options = {});

  /// The store at `dir` if already open, else nullptr (stats queries must
  /// not force a recovery).
  KvStore* Peek(const std::string& dir);

  /// Closes every store (tests simulating a device power cycle).
  void DropAll();

  std::size_t open_stores() const;

  /// Sums StoreStats across every open store (device-level kv.* telemetry
  /// probes; per-store breakdown goes through the kv app's `stats` verb).
  StoreStats AggregateStats() const;

 private:
  fs::Filesystem* fs_;
  MemoryBudget* budget_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<KvStore>> stores_;
};

}  // namespace compstor::kv
