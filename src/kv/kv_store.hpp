// KvStore: a persistent ordered key-value store (LSM) layered on CompStorFS,
// the ROADMAP item-3 small-IO workload the paper's "millions of users"
// scenario needs.
//
// Layout inside the store directory:
//   wal             append-only redo log of unflushed mutations, CRC-framed
//   sst-<N>         immutable sorted runs (see sstable.hpp)
//   manifest-<S>    CRC'd snapshot of {next_file_no, live sstable list}
//
// Crash consistency composes with the PR-6 filesystem journal instead of
// adding a second recovery mechanism:
//   - a Put/Delete is one WAL append == one fs.Write == one journal
//     transaction, so a power cut leaves the record fully present or fully
//     absent; a CRC-framed torn tail (impossible through the journal, but
//     cheap to guard) truncates replay at the last good record;
//   - a flush writes the new sstable (unreferenced until the manifest lands,
//     so a crash strands an orphan file that Open() deletes), then writes
//     manifest-<S+1> whole-file, then deletes manifest-<S> and truncates the
//     WAL. Open() loads the highest manifest that parses and CRC-verifies —
//     an interrupted manifest write is ignored and the previous one still
//     stands, so recovery always sees old-or-new, never torn;
//   - replaying a WAL whose records were already flushed is idempotent: the
//     rebuilt memtable shadows the sstables with identical values.
//
// Concurrency: a shared_mutex admits concurrent readers (Get/Scan) against
// one writer (Put/Delete/Flush/Compact); the block cache and the filesystem
// carry their own locks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/mem_budget.hpp"
#include "common/status.hpp"
#include "fs/filesystem.hpp"
#include "kv/sstable.hpp"
#include "kv/types.hpp"

namespace compstor::kv {

struct KvOptions {
  /// Memtable size that triggers an automatic flush to a sorted run.
  std::uint64_t memtable_limit_bytes = 256 * 1024;
  /// Block-cache capacity (decoded payload bytes).
  std::uint64_t cache_bytes = 512 * 1024;
  /// Sorted-run count that triggers a full compaction after a flush.
  std::uint32_t compact_threshold = 6;
  /// Target data-block payload size inside sstables.
  std::uint32_t block_bytes = 4096;
  /// Platform DRAM budget the cache and memtable reserve against (optional).
  MemoryBudget* budget = nullptr;
};

/// Counters for `kv.*` telemetry probes and the store's admin reply.
struct StoreStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t scans = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t wal_records_replayed = 0;
  std::uint64_t orphans_removed = 0;
  std::uint64_t sstables = 0;
  std::uint64_t sstable_records = 0;
  std::uint64_t memtable_bytes = 0;
  std::uint64_t memtable_entries = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
};

/// One row surfaced by Scan.
struct ScanRow {
  std::string key;
  std::string value;
};

struct ScanOptions {
  std::string_view start;            // inclusive
  std::string_view end;              // exclusive; empty = unbounded
  std::uint32_t limit = 0;           // max matched rows (0 = all)
  std::string_view predicate_contains;  // value substring filter; empty = all
  Aggregate aggregate = Aggregate::kNone;
};

struct ScanResult {
  std::vector<ScanRow> rows;  // filled when aggregate == kNone
  bool truncated = false;
  std::uint64_t scanned = 0;  // live records examined (pre-predicate)
  std::uint64_t matched = 0;
  std::uint64_t scanned_bytes = 0;  // key+value bytes of examined records
  std::int64_t agg_value = 0;
  std::uint64_t agg_skipped = 0;
};

class KvStore {
 public:
  /// Opens (creating the directory if needed) the store at `dir`: loads the
  /// newest valid manifest, removes orphan files from interrupted flushes,
  /// and replays the WAL into the memtable.
  static Result<std::unique_ptr<KvStore>> Open(fs::Filesystem* fs,
                                               std::string dir,
                                               const KvOptions& options = {});
  ~KvStore();
  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  Status Put(std::string_view key, std::string_view value, IoStats* io);
  Status Delete(std::string_view key, IoStats* io);
  /// found=false (with OkStatus) when the key is absent or deleted.
  Status Get(std::string_view key, std::string* value, bool* found,
             IoStats* io);
  Result<ScanResult> Scan(const ScanOptions& options, IoStats* io);

  /// Persists the memtable as a new sorted run (no-op when empty).
  Status Flush(IoStats* io);
  /// Merges every sorted run into one, dropping tombstones and shadowed
  /// versions (no-op with <2 runs).
  Status Compact(IoStats* io);

  StoreStats Stats() const;
  const std::string& dir() const { return dir_; }

 private:
  KvStore(fs::Filesystem* fs, std::string dir, const KvOptions& options);

  // Memtable values: nullopt = tombstone.
  using Memtable = std::map<std::string, std::optional<std::string>, std::less<>>;

  Status Recover(IoStats* io);
  Status LoadManifest(std::uint64_t* seq_out,
                      std::vector<std::uint64_t>* files_out);
  Status WriteManifest(std::uint64_t seq,
                       const std::vector<std::uint64_t>& files, IoStats* io);
  Status RemoveOrphans(const std::vector<std::uint64_t>& live_files);
  Status ReplayWal(IoStats* io);
  Status AppendWal(OpType op, std::string_view key, std::string_view value,
                   IoStats* io);
  Status ApplyToMemtable(std::string_view key,
                         std::optional<std::string> value);
  Status FlushLocked(IoStats* io);
  Status CompactLocked(IoStats* io);
  /// Writes the memtable (or a merged record stream) as sst-<file_no>.
  Status WriteRun(std::uint64_t file_no,
                  const std::function<Status(SSTableBuilder&)>& fill,
                  IoStats* io);

  std::string SstPath(std::uint64_t file_no) const;
  std::string ManifestPath(std::uint64_t seq) const;
  std::string WalPath() const;

  fs::Filesystem* fs_;
  const std::string dir_;
  const KvOptions options_;
  BlockCache cache_;

  mutable std::shared_mutex mutex_;
  Memtable memtable_;
  std::uint64_t memtable_bytes_ = 0;
  MemoryReservation memtable_reservation_;
  std::uint32_t wal_inode_ = 0;
  std::uint64_t wal_size_ = 0;
  std::uint64_t next_file_no_ = 1;
  std::uint64_t manifest_seq_ = 0;
  /// Newest run last; lookups walk it back-to-front.
  std::vector<std::unique_ptr<SSTableReader>> sstables_;

  // Op counters (guarded by mutex_; readers bump under the shared lock via
  // relaxed atomics would be overkill — Stats() takes the shared lock).
  mutable std::shared_mutex stats_mutex_;
  StoreStats counters_;
};

}  // namespace compstor::kv
