// Plain value types of the in-storage KV engine's request/result payload.
//
// Deliberately dependency-free (std only): these structs are embedded in the
// proto entities (Command/Response wire v5, QueryType::kKv) AND consumed by
// the kv app and the KvStore itself, so they must not pull fs/ssd headers
// into the proto layer. Serialization lives with the rest of the wire format
// in proto/entities.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace compstor::kv {

/// One operation in a KV batch. Point ops use `key`/`value`; kScan reads the
/// ordered range [key, end_key) (empty end_key = to the end of the keyspace).
enum class OpType : std::uint8_t {
  kGet = 0,
  kPut = 1,
  kDelete = 2,
  kScan = 3,
};

/// Aggregate pushed down with a kScan: evaluated on-device over the matching
/// records so only the result crosses the wire. kSum/kMin/kMax parse the
/// value as a decimal integer (records whose value does not parse are
/// counted in `agg_skipped` and excluded from the fold).
enum class Aggregate : std::uint8_t {
  kNone = 0,   // return the matching rows themselves
  kCount = 1,
  kSum = 2,
  kMin = 3,
  kMax = 4,
};

struct Op {
  OpType type = OpType::kGet;
  std::string key;
  std::string value;     // kPut payload
  std::string end_key;   // kScan: exclusive upper bound ("" = unbounded)
  std::uint32_t limit = 0;  // kScan: max matching rows folded/returned (0 = all)
};

/// A batch of KV operations against one store, executed in order on the
/// device. `predicate_contains` and `aggregate` apply to every kScan in the
/// batch (YCSB-style scans are homogeneous; per-op predicates can be added
/// as an Op field later without a wire break).
struct Request {
  std::string dir = "/kv";  // store directory on the device filesystem
  std::vector<Op> ops;
  /// Filter pushdown: only records whose value contains this substring match
  /// a kScan ("" = match all).
  std::string predicate_contains;
  Aggregate aggregate = Aggregate::kNone;

  bool empty() const { return ops.empty(); }
};

/// Result of one Op. For kGet: found/value. For kScan: rows (aggregate ==
/// kNone) or the agg_* fold; `scanned` counts records examined before the
/// predicate, `matched` after.
struct OpResult {
  std::uint16_t status_code = 0;  // StatusCode as integer; 0 = OK
  bool found = false;             // kGet: key present (and not a tombstone)
  std::string value;              // kGet hit payload
  std::vector<std::pair<std::string, std::string>> rows;  // kScan, kNone agg
  bool truncated = false;         // kScan: limit/row-byte cap cut the rows off
  std::uint64_t scanned = 0;
  std::uint64_t matched = 0;
  std::int64_t agg_value = 0;     // count/sum/min/max fold result
  std::uint64_t agg_skipped = 0;  // records excluded from a numeric fold

  bool ok() const { return status_code == 0; }
};

/// Batch reply plus the transfer accounting the pushdown experiments and the
/// query ledger consume.
struct Reply {
  std::vector<OpResult> results;
  std::uint64_t keys_read = 0;     // point lookups + records scanned
  std::uint64_t keys_written = 0;  // puts + deletes applied
  /// Key+value bytes the device-side scan examined (what a host-side scan
  /// would have had to pull across PCIe).
  std::uint64_t bytes_scanned = 0;
  /// Key+value bytes actually returned in `results` (rows + get values).
  std::uint64_t bytes_returned = 0;

  /// Link traffic a pushdown scan avoided relative to shipping every
  /// examined record host-ward.
  std::uint64_t PushdownBytesSaved() const {
    return bytes_scanned > bytes_returned ? bytes_scanned - bytes_returned : 0;
  }
  bool empty() const {
    return results.empty() && keys_read == 0 && keys_written == 0;
  }
};

}  // namespace compstor::kv
