#include "kv/batch.hpp"

#include <utility>

namespace compstor::kv {
namespace {

OpResult RunOp(KvStore& store, const Op& op, const Request& request,
               Reply& reply, const ChargeFn& charge) {
  OpResult result;
  IoStats io;
  std::uint64_t touched = 0;
  Status st = OkStatus();
  switch (op.type) {
    case OpType::kGet: {
      st = store.Get(op.key, &result.value, &result.found, &io);
      ++reply.keys_read;
      touched = op.key.size() + result.value.size();
      reply.bytes_returned += result.value.size();
      break;
    }
    case OpType::kPut: {
      st = store.Put(op.key, op.value, &io);
      ++reply.keys_written;
      touched = op.key.size() + op.value.size();
      break;
    }
    case OpType::kDelete: {
      st = store.Delete(op.key, &io);
      ++reply.keys_written;
      touched = op.key.size();
      break;
    }
    case OpType::kScan: {
      ScanOptions scan;
      scan.start = op.key;
      scan.end = op.end_key;
      scan.limit = op.limit;
      scan.predicate_contains = request.predicate_contains;
      scan.aggregate = request.aggregate;
      auto r = store.Scan(scan, &io);
      if (!r.ok()) {
        st = r.status();
        break;
      }
      result.rows.reserve(r->rows.size());
      for (ScanRow& row : r->rows) {
        result.rows.emplace_back(std::move(row.key), std::move(row.value));
      }
      result.truncated = r->truncated;
      result.scanned = r->scanned;
      result.matched = r->matched;
      result.agg_value = r->agg_value;
      result.agg_skipped = r->agg_skipped;
      reply.keys_read += r->scanned;
      reply.bytes_scanned += r->scanned_bytes;
      for (const auto& [key, value] : result.rows) {
        reply.bytes_returned += key.size() + value.size();
      }
      touched = r->scanned_bytes;
      break;
    }
  }
  if (charge) charge(io, touched);
  if (!st.ok()) result.status_code = static_cast<std::uint16_t>(st.code());
  return result;
}

}  // namespace

Reply ExecuteBatch(KvStore& store, const Request& request,
                   const ChargeFn& charge, std::string* errors) {
  Reply reply;
  reply.results.reserve(request.ops.size());
  for (const Op& op : request.ops) {
    OpResult result = RunOp(store, op, request, reply, charge);
    if (!result.ok() && errors != nullptr) {
      errors->append("kv: op failed with status ");
      errors->append(std::to_string(result.status_code));
      errors->append(" key=");
      errors->append(op.key);
      errors->push_back('\n');
    }
    reply.results.push_back(std::move(result));
  }
  return reply;
}

}  // namespace compstor::kv
