// Shared batch executor for KV requests.
//
// Both consumers of the wire-level kv::Request run the same loop: the "kv"
// minion app (data plane, charged to the cost model) and the agent's kKv
// admin-plane query (host tooling poking a store directly). Keeping the
// op dispatch here means the two surfaces cannot drift on semantics —
// tombstones, truncation, aggregate folds, per-op failure isolation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "kv/kv_store.hpp"
#include "kv/types.hpp"

namespace compstor::kv {

/// Invoked once per op with the flash IO it performed and the record bytes
/// the engine examined (the compute-work unit of the cost model).
using ChargeFn = std::function<void(const IoStats&, std::uint64_t touched_bytes)>;

/// Executes every op in `request` against `store`. A failed op records its
/// status code in its OpResult and the batch continues (shell `;` semantics).
/// `charge` may be empty; `errors`, when non-null, collects one "kv: ..."
/// line per failed op.
Reply ExecuteBatch(KvStore& store, const Request& request,
                   const ChargeFn& charge = {}, std::string* errors = nullptr);

}  // namespace compstor::kv
