#include "kv/kv_store.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "util/byte_io.hpp"
#include "util/crc32c.hpp"

namespace compstor::kv {
namespace {

constexpr std::uint64_t kManifestMagic = 0x436f6d704b764d31ull;  // "CompKvM1"
constexpr std::uint32_t kManifestVersion = 1;
// Approximate per-entry container overhead charged to the memory budget on
// top of key+value bytes (map node + string headers).
constexpr std::uint64_t kMemtableEntryOverhead = 96;

Status EnsureDir(fs::Filesystem* fs, const std::string& dir) {
  // Create each prefix of the (absolute) path; AlreadyExists is fine.
  std::size_t pos = 1;
  while (pos <= dir.size()) {
    std::size_t next = dir.find('/', pos);
    if (next == std::string::npos) next = dir.size();
    const std::string prefix = dir.substr(0, next);
    if (!prefix.empty() && prefix != "/") {
      Status st = fs->Mkdir(prefix);
      if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
    }
    pos = next + 1;
  }
  return OkStatus();
}

/// Parses a decimal integer value for the sum/min/max pushdown folds.
bool ParseI64(std::string_view s, std::int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  // Values are short; copy to guarantee termination.
  std::string buf(s);
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Lifecycle / recovery

KvStore::KvStore(fs::Filesystem* fs, std::string dir, const KvOptions& options)
    : fs_(fs),
      dir_(std::move(dir)),
      options_(options),
      cache_(options.cache_bytes, options.budget),
      memtable_reservation_(options.budget) {}

KvStore::~KvStore() = default;

std::string KvStore::SstPath(std::uint64_t file_no) const {
  return dir_ + "/sst-" + std::to_string(file_no);
}
std::string KvStore::ManifestPath(std::uint64_t seq) const {
  return dir_ + "/manifest-" + std::to_string(seq);
}
std::string KvStore::WalPath() const { return dir_ + "/wal"; }

Result<std::unique_ptr<KvStore>> KvStore::Open(fs::Filesystem* fs,
                                               std::string dir,
                                               const KvOptions& options) {
  if (dir.empty() || dir.front() != '/') {
    return InvalidArgument("kv store dir must be an absolute path");
  }
  while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
  COMPSTOR_RETURN_IF_ERROR(EnsureDir(fs, dir));
  auto store =
      std::unique_ptr<KvStore>(new KvStore(fs, std::move(dir), options));
  IoStats io;
  COMPSTOR_RETURN_IF_ERROR(store->Recover(&io));
  return store;
}

Status KvStore::Recover(IoStats* io) {
  std::unique_lock<std::shared_mutex> guard(mutex_);
  std::vector<std::uint64_t> files;
  COMPSTOR_RETURN_IF_ERROR(LoadManifest(&manifest_seq_, &files));
  for (std::uint64_t file_no : files) {
    COMPSTOR_ASSIGN_OR_RETURN(
        std::unique_ptr<SSTableReader> reader,
        SSTableReader::Open(fs_, SstPath(file_no), file_no));
    next_file_no_ = std::max(next_file_no_, file_no + 1);
    sstables_.push_back(std::move(reader));
  }
  COMPSTOR_RETURN_IF_ERROR(RemoveOrphans(files));
  return ReplayWal(io);
}

Status KvStore::LoadManifest(std::uint64_t* seq_out,
                             std::vector<std::uint64_t>* files_out) {
  *seq_out = 0;
  files_out->clear();
  COMPSTOR_ASSIGN_OR_RETURN(std::vector<fs::DirEntry> entries,
                            fs_->ReadDir(dir_));
  std::vector<std::uint64_t> candidates;
  for (const fs::DirEntry& e : entries) {
    if (e.name.rfind("manifest-", 0) == 0) {
      candidates.push_back(std::strtoull(e.name.c_str() + 9, nullptr, 10));
    }
  }
  std::sort(candidates.rbegin(), candidates.rend());
  for (std::uint64_t seq : candidates) {
    // Highest sequence that parses and CRC-verifies wins; an interrupted
    // WriteFile (empty or truncated image) fails here and the previous
    // manifest still stands — old-or-new, never torn.
    auto data = fs_->ReadFileAll(ManifestPath(seq));
    if (!data.ok()) continue;
    if (data->size() < 4) continue;
    const std::span<const std::uint8_t> body(data->data(), data->size() - 4);
    util::ByteReader cr(
        std::span<const std::uint8_t>(data->data() + body.size(), 4));
    auto stored_crc = cr.GetU32();
    if (!stored_crc.ok() || util::Crc32c(body) != *stored_crc) continue;
    util::ByteReader r(body);
    auto magic = r.GetU64();
    if (!magic.ok() || *magic != kManifestMagic) continue;
    auto version = r.GetU32();
    if (!version.ok() || *version != kManifestVersion) continue;
    auto next = r.GetU64();
    auto count = r.GetU32();
    if (!next.ok() || !count.ok()) continue;
    std::vector<std::uint64_t> files;
    bool bad = false;
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto f = r.GetU64();
      if (!f.ok()) {
        bad = true;
        break;
      }
      files.push_back(*f);
    }
    if (bad) continue;
    *seq_out = seq;
    *files_out = std::move(files);
    next_file_no_ = std::max<std::uint64_t>(1, *next);
    return OkStatus();
  }
  return OkStatus();  // fresh store: no manifest yet
}

Status KvStore::WriteManifest(std::uint64_t seq,
                              const std::vector<std::uint64_t>& files,
                              IoStats* io) {
  util::ByteWriter w;
  w.PutU64(kManifestMagic);
  w.PutU32(kManifestVersion);
  w.PutU64(next_file_no_);
  w.PutU32(static_cast<std::uint32_t>(files.size()));
  for (std::uint64_t f : files) w.PutU64(f);
  w.PutU32(util::Crc32c(w.bytes()));
  const std::vector<std::uint8_t> bytes = w.Take();
  COMPSTOR_RETURN_IF_ERROR(fs_->WriteFile(ManifestPath(seq), bytes));
  if (io != nullptr) io->bytes_written += bytes.size();
  const std::uint64_t old_seq = manifest_seq_;
  manifest_seq_ = seq;
  if (old_seq != 0 && old_seq != seq) {
    // Losing this unlink to a crash is harmless: the higher sequence wins at
    // the next open and RemoveOrphans sweeps the stale file.
    Status st = fs_->Unlink(ManifestPath(old_seq));
    if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
  }
  return OkStatus();
}

Status KvStore::RemoveOrphans(const std::vector<std::uint64_t>& live_files) {
  COMPSTOR_ASSIGN_OR_RETURN(std::vector<fs::DirEntry> entries,
                            fs_->ReadDir(dir_));
  std::uint64_t removed = 0;
  for (const fs::DirEntry& e : entries) {
    bool orphan = false;
    if (e.name.rfind("sst-", 0) == 0) {
      const std::uint64_t file_no =
          std::strtoull(e.name.c_str() + 4, nullptr, 10);
      orphan = std::find(live_files.begin(), live_files.end(), file_no) ==
               live_files.end();
    } else if (e.name.rfind("manifest-", 0) == 0) {
      orphan = std::strtoull(e.name.c_str() + 9, nullptr, 10) != manifest_seq_;
    }
    if (!orphan) continue;
    COMPSTOR_RETURN_IF_ERROR(fs_->Unlink(dir_ + "/" + e.name));
    ++removed;
  }
  if (removed > 0) {
    std::unique_lock<std::shared_mutex> guard(stats_mutex_);
    counters_.orphans_removed += removed;
  }
  return OkStatus();
}

Status KvStore::ReplayWal(IoStats* io) {
  const std::string path = WalPath();
  auto stat = fs_->Stat(path);
  if (!stat.ok()) {
    if (stat.status().code() != StatusCode::kNotFound) return stat.status();
    COMPSTOR_ASSIGN_OR_RETURN(wal_inode_, fs_->Create(path));
    wal_size_ = 0;
    return OkStatus();
  }
  wal_inode_ = stat->inode;
  std::vector<std::uint8_t> data(stat->size);
  COMPSTOR_ASSIGN_OR_RETURN(std::uint64_t got, fs_->Read(wal_inode_, 0, data));
  data.resize(got);
  std::uint64_t offset = 0;
  std::uint64_t replayed = 0;
  while (offset + 8 <= data.size()) {
    util::ByteReader hr(std::span<const std::uint8_t>(data).subspan(offset, 8));
    const std::uint32_t crc = *hr.GetU32();
    const std::uint32_t len = *hr.GetU32();
    if (offset + 8 + len > data.size()) break;  // torn tail
    const std::span<const std::uint8_t> payload(data.data() + offset + 8, len);
    if (util::Crc32c(payload) != crc) break;  // corrupt tail: stop replay here
    util::ByteReader r(payload);
    auto op = r.GetU8();
    auto key = r.GetString();
    auto value = r.GetString();
    if (!op.ok() || !key.ok() || !value.ok()) break;
    if (*op == static_cast<std::uint8_t>(OpType::kPut)) {
      COMPSTOR_RETURN_IF_ERROR(ApplyToMemtable(*key, std::move(*value)));
    } else if (*op == static_cast<std::uint8_t>(OpType::kDelete)) {
      COMPSTOR_RETURN_IF_ERROR(ApplyToMemtable(*key, std::nullopt));
    } else {
      break;  // unknown op: treat as corrupt tail
    }
    offset += 8 + len;
    ++replayed;
  }
  // Records past `offset` (if any) never committed; appends resume over them.
  wal_size_ = offset;
  if (io != nullptr) io->flash_bytes_read += got;
  std::unique_lock<std::shared_mutex> guard(stats_mutex_);
  counters_.wal_records_replayed += replayed;
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Mutations

Status KvStore::AppendWal(OpType op, std::string_view key,
                          std::string_view value, IoStats* io) {
  util::ByteWriter body;
  body.PutU8(static_cast<std::uint8_t>(op));
  body.PutString(key);
  body.PutString(value);
  util::ByteWriter rec;
  rec.PutU32(util::Crc32c(body.bytes()));
  rec.PutU32(static_cast<std::uint32_t>(body.bytes().size()));
  rec.PutRaw(body.bytes());
  const std::vector<std::uint8_t>& bytes = rec.bytes();
  // One fs.Write == one journal transaction: the record (and the WAL size
  // stamp) lands atomically or not at all under a power cut.
  COMPSTOR_RETURN_IF_ERROR(fs_->Write(wal_inode_, wal_size_, bytes));
  wal_size_ += bytes.size();
  if (io != nullptr) io->bytes_written += bytes.size();
  return OkStatus();
}

Status KvStore::ApplyToMemtable(std::string_view key,
                                std::optional<std::string> value) {
  const std::uint64_t footprint =
      key.size() + (value ? value->size() : 0) + kMemtableEntryOverhead;
  Status reserve = memtable_reservation_.Grow(footprint);
  if (!reserve.ok()) return reserve;
  auto it = memtable_.find(key);
  if (it == memtable_.end()) {
    memtable_.emplace(std::string(key), std::move(value));
  } else {
    it->second = std::move(value);
  }
  // Overwrites keep both footprints reserved until the next flush clears the
  // reservation — conservative, and it keeps the accounting release-free.
  memtable_bytes_ += footprint;
  return OkStatus();
}

Status KvStore::Put(std::string_view key, std::string_view value,
                    IoStats* io) {
  if (key.empty()) return InvalidArgument("empty key");
  std::unique_lock<std::shared_mutex> guard(mutex_);
  COMPSTOR_RETURN_IF_ERROR(AppendWal(OpType::kPut, key, value, io));
  Status st = ApplyToMemtable(key, std::string(value));
  if (st.code() == StatusCode::kResourceExhausted) {
    // DRAM budget pressure: flush to free the memtable, then retry once.
    COMPSTOR_RETURN_IF_ERROR(FlushLocked(io));
    st = ApplyToMemtable(key, std::string(value));
  }
  COMPSTOR_RETURN_IF_ERROR(st);
  {
    std::unique_lock<std::shared_mutex> sg(stats_mutex_);
    ++counters_.puts;
  }
  if (memtable_bytes_ >= options_.memtable_limit_bytes) {
    COMPSTOR_RETURN_IF_ERROR(FlushLocked(io));
  }
  return OkStatus();
}

Status KvStore::Delete(std::string_view key, IoStats* io) {
  if (key.empty()) return InvalidArgument("empty key");
  std::unique_lock<std::shared_mutex> guard(mutex_);
  COMPSTOR_RETURN_IF_ERROR(AppendWal(OpType::kDelete, key, "", io));
  Status st = ApplyToMemtable(key, std::nullopt);
  if (st.code() == StatusCode::kResourceExhausted) {
    COMPSTOR_RETURN_IF_ERROR(FlushLocked(io));
    st = ApplyToMemtable(key, std::nullopt);
  }
  COMPSTOR_RETURN_IF_ERROR(st);
  {
    std::unique_lock<std::shared_mutex> sg(stats_mutex_);
    ++counters_.deletes;
  }
  if (memtable_bytes_ >= options_.memtable_limit_bytes) {
    COMPSTOR_RETURN_IF_ERROR(FlushLocked(io));
  }
  return OkStatus();
}

Status KvStore::Flush(IoStats* io) {
  std::unique_lock<std::shared_mutex> guard(mutex_);
  return FlushLocked(io);
}

Status KvStore::FlushLocked(IoStats* io) {
  if (memtable_.empty()) return OkStatus();
  const std::uint64_t file_no = next_file_no_++;
  COMPSTOR_RETURN_IF_ERROR(WriteRun(
      file_no,
      [this](SSTableBuilder& builder) -> Status {
        for (const auto& [key, value] : memtable_) {
          COMPSTOR_RETURN_IF_ERROR(
              builder.Add(key, value ? *value : "", !value.has_value()));
        }
        return OkStatus();
      },
      io));
  COMPSTOR_ASSIGN_OR_RETURN(
      std::unique_ptr<SSTableReader> reader,
      SSTableReader::Open(fs_, SstPath(file_no), file_no));
  std::vector<std::uint64_t> files;
  for (const auto& sst : sstables_) files.push_back(sst->file_no());
  files.push_back(file_no);
  // Publication point: until this manifest lands, the run is an orphan the
  // next Open() deletes; after it, WAL replay of the same records is
  // idempotent (the rebuilt memtable shadows the run with equal values).
  COMPSTOR_RETURN_IF_ERROR(WriteManifest(manifest_seq_ + 1, files, io));
  sstables_.push_back(std::move(reader));
  COMPSTOR_RETURN_IF_ERROR(fs_->Truncate(wal_inode_, 0));
  wal_size_ = 0;
  memtable_.clear();
  memtable_bytes_ = 0;
  memtable_reservation_.ReleaseAll();
  {
    std::unique_lock<std::shared_mutex> sg(stats_mutex_);
    ++counters_.flushes;
  }
  if (sstables_.size() >= options_.compact_threshold) {
    return CompactLocked(io);
  }
  return OkStatus();
}

Status KvStore::WriteRun(std::uint64_t file_no,
                         const std::function<Status(SSTableBuilder&)>& fill,
                         IoStats* io) {
  SSTableBuilder builder(options_.block_bytes);
  COMPSTOR_RETURN_IF_ERROR(fill(builder));
  const std::vector<std::uint8_t> image = builder.Finish();
  COMPSTOR_RETURN_IF_ERROR(fs_->WriteFile(SstPath(file_no), image));
  if (io != nullptr) io->bytes_written += image.size();
  return OkStatus();
}

Status KvStore::Compact(IoStats* io) {
  std::unique_lock<std::shared_mutex> guard(mutex_);
  return CompactLocked(io);
}

Status KvStore::CompactLocked(IoStats* io) {
  if (sstables_.size() < 2) return OkStatus();
  // Full-merge compaction: apply runs oldest -> newest so later versions
  // shadow earlier ones, then drop tombstones (a full merge has nothing left
  // to resurrect under them).
  std::map<std::string, std::optional<std::string>> merged;
  for (const auto& sst : sstables_) {
    for (std::uint32_t b = 0; b < sst->num_blocks(); ++b) {
      COMPSTOR_ASSIGN_OR_RETURN(SSTableReader::BlockHandle block,
                                sst->ReadBlock(b, &cache_, io));
      for (const SstRecord& rec : block.records) {
        if (rec.tombstone) {
          merged[std::string(rec.key)] = std::nullopt;
        } else {
          merged[std::string(rec.key)] = std::string(rec.value);
        }
      }
    }
  }
  const std::uint64_t file_no = next_file_no_++;
  COMPSTOR_RETURN_IF_ERROR(WriteRun(
      file_no,
      [&merged](SSTableBuilder& builder) -> Status {
        for (const auto& [key, value] : merged) {
          if (!value) continue;
          COMPSTOR_RETURN_IF_ERROR(builder.Add(key, *value, false));
        }
        return OkStatus();
      },
      io));
  COMPSTOR_ASSIGN_OR_RETURN(
      std::unique_ptr<SSTableReader> reader,
      SSTableReader::Open(fs_, SstPath(file_no), file_no));
  COMPSTOR_RETURN_IF_ERROR(WriteManifest(manifest_seq_ + 1, {file_no}, io));
  // The old runs are unreferenced now; a crash before these unlinks only
  // strands orphans for the next Open().
  for (const auto& sst : sstables_) {
    cache_.EraseFile(sst->file_no());
    Status st = fs_->Unlink(sst->path());
    if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
  }
  sstables_.clear();
  sstables_.push_back(std::move(reader));
  std::unique_lock<std::shared_mutex> sg(stats_mutex_);
  ++counters_.compactions;
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Reads

Status KvStore::Get(std::string_view key, std::string* value, bool* found,
                    IoStats* io) {
  *found = false;
  value->clear();
  std::shared_lock<std::shared_mutex> guard(mutex_);
  {
    std::unique_lock<std::shared_mutex> sg(stats_mutex_);
    ++counters_.gets;
  }
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    if (it->second) {
      *value = *it->second;
      *found = true;
    }
    return OkStatus();  // tombstone: authoritative "absent"
  }
  for (auto sst = sstables_.rbegin(); sst != sstables_.rend(); ++sst) {
    if ((*sst)->num_blocks() == 0) continue;
    if (key < (*sst)->first_key(0)) continue;
    const std::uint32_t block_idx = (*sst)->FindBlock(key);
    COMPSTOR_ASSIGN_OR_RETURN(SSTableReader::BlockHandle block,
                              (*sst)->ReadBlock(block_idx, &cache_, io));
    auto rec = std::lower_bound(
        block.records.begin(), block.records.end(), key,
        [](const SstRecord& r, std::string_view k) { return r.key < k; });
    if (rec == block.records.end() || rec->key != key) continue;
    if (!rec->tombstone) {
      *value = std::string(rec->value);
      *found = true;
    }
    return OkStatus();
  }
  return OkStatus();
}

Result<ScanResult> KvStore::Scan(const ScanOptions& options, IoStats* io) {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  {
    std::unique_lock<std::shared_mutex> sg(stats_mutex_);
    ++counters_.scans;
  }

  // One cursor per source, ranked oldest -> newest; the memtable outranks
  // every run. The merge takes the smallest key each round, the newest
  // source wins ties, and every tied cursor advances past the key.
  struct Cursor {
    // sstable state
    const SSTableReader* sst = nullptr;
    std::uint32_t block_idx = 0;
    SSTableReader::BlockHandle block;  // pins the payload
    std::size_t rec_idx = 0;
    // memtable state
    const Memtable* memtable = nullptr;
    Memtable::const_iterator mem_it;
    Memtable::const_iterator mem_end;
    bool done = false;

    std::string_view key() const {
      return memtable != nullptr ? std::string_view(mem_it->first)
                                 : block.records[rec_idx].key;
    }
  };

  std::vector<Cursor> cursors;
  for (const auto& sst : sstables_) {
    if (sst->num_blocks() == 0) continue;
    Cursor c;
    c.sst = sst.get();
    c.block_idx = options.start.empty() ? 0 : sst->FindBlock(options.start);
    while (true) {
      COMPSTOR_ASSIGN_OR_RETURN(c.block,
                                c.sst->ReadBlock(c.block_idx, &cache_, io));
      auto rec = std::lower_bound(
          c.block.records.begin(), c.block.records.end(), options.start,
          [](const SstRecord& r, std::string_view k) { return r.key < k; });
      if (rec != c.block.records.end()) {
        c.rec_idx = static_cast<std::size_t>(rec - c.block.records.begin());
        break;
      }
      if (++c.block_idx >= c.sst->num_blocks()) {
        c.done = true;
        break;
      }
    }
    if (!c.done) cursors.push_back(std::move(c));
  }
  {
    Cursor c;
    c.memtable = &memtable_;
    c.mem_it = options.start.empty() ? memtable_.begin()
                                     : memtable_.lower_bound(options.start);
    c.mem_end = memtable_.end();
    c.done = c.mem_it == c.mem_end;
    if (!c.done) cursors.push_back(std::move(c));
  }

  auto advance = [&](Cursor& c) -> Status {
    if (c.memtable != nullptr) {
      ++c.mem_it;
      c.done = c.mem_it == c.mem_end;
      return OkStatus();
    }
    ++c.rec_idx;
    while (c.rec_idx >= c.block.records.size()) {
      if (++c.block_idx >= c.sst->num_blocks()) {
        c.done = true;
        return OkStatus();
      }
      COMPSTOR_ASSIGN_OR_RETURN(c.block,
                                c.sst->ReadBlock(c.block_idx, &cache_, io));
      c.rec_idx = 0;
    }
    return OkStatus();
  };

  ScanResult result;
  bool agg_seeded = false;
  while (true) {
    // Smallest live key this round; the newest source holding it wins.
    std::string_view min_key;
    std::size_t winner = cursors.size();
    for (std::size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].done) continue;
      const std::string_view k = cursors[i].key();
      if (winner == cursors.size() || k < min_key) {
        min_key = k;
        winner = i;
      } else if (k == min_key) {
        winner = i;  // later cursors are newer (memtable is last)
      }
    }
    if (winner == cursors.size()) break;
    if (!options.end.empty() && min_key >= options.end) break;

    bool tombstone;
    std::string_view value;
    const Cursor& w = cursors[winner];
    if (w.memtable != nullptr) {
      tombstone = !w.mem_it->second.has_value();
      value = tombstone ? std::string_view() : std::string_view(*w.mem_it->second);
    } else {
      const SstRecord& rec = w.block.records[w.rec_idx];
      tombstone = rec.tombstone;
      value = rec.value;
    }
    // Copy out before advancing: the winning cursor's storage goes away.
    const std::string key(min_key);
    const std::string value_copy(value);
    for (Cursor& c : cursors) {
      while (!c.done && c.key() == key) COMPSTOR_RETURN_IF_ERROR(advance(c));
    }
    if (tombstone) continue;

    ++result.scanned;
    result.scanned_bytes += key.size() + value_copy.size();
    if (!options.predicate_contains.empty() &&
        value_copy.find(options.predicate_contains) == std::string::npos) {
      continue;
    }
    ++result.matched;
    switch (options.aggregate) {
      case Aggregate::kNone:
        result.rows.push_back(ScanRow{key, value_copy});
        break;
      case Aggregate::kCount:
        ++result.agg_value;
        break;
      case Aggregate::kSum:
      case Aggregate::kMin:
      case Aggregate::kMax: {
        std::int64_t v = 0;
        if (!ParseI64(value_copy, &v)) {
          ++result.agg_skipped;
          break;
        }
        if (options.aggregate == Aggregate::kSum) {
          result.agg_value += v;
        } else if (!agg_seeded) {
          result.agg_value = v;
          agg_seeded = true;
        } else if (options.aggregate == Aggregate::kMin) {
          result.agg_value = std::min(result.agg_value, v);
        } else {
          result.agg_value = std::max(result.agg_value, v);
        }
        break;
      }
    }
    if (options.limit != 0 && result.matched >= options.limit) {
      // More live keys may remain; report the cut.
      for (const Cursor& c : cursors) {
        if (!c.done) {
          result.truncated = true;
          break;
        }
      }
      break;
    }
  }
  return result;
}

StoreStats KvStore::Stats() const {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  StoreStats s;
  {
    std::shared_lock<std::shared_mutex> sg(stats_mutex_);
    s = counters_;
  }
  s.sstables = sstables_.size();
  for (const auto& sst : sstables_) s.sstable_records += sst->records();
  s.memtable_bytes = memtable_bytes_;
  s.memtable_entries = memtable_.size();
  s.cache_bytes = cache_.bytes();
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_evictions = cache_.evictions();
  return s;
}

}  // namespace compstor::kv
