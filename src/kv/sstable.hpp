// Immutable sorted-run files (sstables) of the in-storage KV engine, plus
// the shared block cache they are read through.
//
// On-fs layout of one sstable (a regular CompStorFS file):
//
//   [data block]* [index] [footer]
//
//   data block : u32 crc32c(payload) | u32 payload_len | payload
//   payload    : record*  where record = u8 flags | u32 klen | u32 vlen |
//                key bytes | value bytes   (flags bit0 = tombstone)
//   index      : u32 block_count | { u64 offset | u32 stored_len |
//                u32 record_count | string first_key }*
//   footer     : u64 index_offset | u32 index_len | u32 index_crc |
//                u64 magic   (fixed 24 bytes at end of file)
//
// Every block carries its own CRC32c on top of the filesystem's per-block
// checksum table, so a corrupted run surfaces as kDataCorruption at the KV
// layer with the sstable name attached. Blocks decode into the shared
// BlockCache, whose bytes are reserved against the ISPS MemoryBudget —
// the KV page cache competes with the streaming pipeline for device DRAM
// instead of growing unbounded.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/mem_budget.hpp"
#include "common/status.hpp"
#include "fs/filesystem.hpp"

namespace compstor::kv {

/// Per-call IO accounting, filled by store operations so the app layer can
/// charge the cost model and the ledger without reaching into the store.
struct IoStats {
  std::uint64_t blocks_read = 0;       // sstable blocks fetched from flash
  std::uint64_t flash_bytes_read = 0;  // bytes of those fetches
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t bytes_written = 0;     // WAL + sstable + manifest bytes

  void Add(const IoStats& o) {
    blocks_read += o.blocks_read;
    flash_bytes_read += o.flash_bytes_read;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    bytes_written += o.bytes_written;
  }
};

/// One decoded record inside a pinned block. The views borrow from the
/// block payload: valid for as long as the BlockHandle that produced them.
struct SstRecord {
  std::string_view key;
  std::string_view value;
  bool tombstone = false;
};

/// LRU cache of decoded sstable block payloads, shared by every sstable of a
/// store. Entries are handed out as shared_ptr so eviction never invalidates
/// a reader mid-scan. `budget` (optional) mirrors the cache's bytes into the
/// platform MemoryBudget; when the budget refuses a reservation the cache
/// evicts, and if it still cannot fit, the block is served uncached.
class BlockCache {
 public:
  BlockCache(std::uint64_t capacity_bytes, MemoryBudget* budget)
      : capacity_(capacity_bytes), budget_(budget) {}
  ~BlockCache();

  using Payload = std::shared_ptr<const std::vector<std::uint8_t>>;

  /// nullptr on miss.
  Payload Get(std::uint64_t file_no, std::uint32_t block_index);
  /// Inserts (evicting LRU entries as needed); no-op if the payload cannot
  /// be fitted under the capacity or the memory budget.
  void Insert(std::uint64_t file_no, std::uint32_t block_index, Payload payload);
  /// Drops every cached block of `file_no` (after compaction unlinks it).
  void EraseFile(std::uint64_t file_no);

  std::uint64_t bytes() const;
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  using Key = std::pair<std::uint64_t, std::uint32_t>;
  struct Entry {
    Payload payload;
    std::list<Key>::iterator lru_pos;
  };

  void EvictOneLocked();  // drops the LRU tail (mutex held)

  const std::uint64_t capacity_;
  MemoryBudget* budget_;
  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // front = most recent
  std::uint64_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// Accumulates sorted records into the on-fs sstable byte image. Keys must
/// be appended in strictly increasing order; Finish() seals the last block,
/// writes index + footer and returns the file image.
class SSTableBuilder {
 public:
  explicit SSTableBuilder(std::uint32_t target_block_bytes = 4096)
      : target_block_bytes_(target_block_bytes) {}

  Status Add(std::string_view key, std::string_view value, bool tombstone);
  std::vector<std::uint8_t> Finish();

  std::uint64_t records() const { return records_; }

 private:
  void SealBlock();

  const std::uint32_t target_block_bytes_;
  std::vector<std::uint8_t> file_;          // sealed blocks
  std::vector<std::uint8_t> block_;         // open block payload
  std::string block_first_key_;
  std::uint32_t block_records_ = 0;
  std::string last_key_;
  std::uint64_t records_ = 0;
  struct IndexEntry {
    std::uint64_t offset;
    std::uint32_t stored_len;
    std::uint32_t record_count;
    std::string first_key;
  };
  std::vector<IndexEntry> index_;
};

/// Read-only view of one sstable file. Open() loads and verifies the footer
/// and index; record data is fetched block-at-a-time through the cache.
/// Thread-safe for concurrent readers (immutable after Open; the underlying
/// Filesystem serializes device access internally).
class SSTableReader {
 public:
  static Result<std::unique_ptr<SSTableReader>> Open(fs::Filesystem* fs,
                                                     const std::string& path,
                                                     std::uint64_t file_no);

  /// A pinned, decoded block: records view into `payload`.
  struct BlockHandle {
    BlockCache::Payload payload;
    std::vector<SstRecord> records;
  };

  Result<BlockHandle> ReadBlock(std::uint32_t index, BlockCache* cache,
                                IoStats* io) const;

  /// Index of the last block whose first_key <= key (the only block that can
  /// contain `key`); 0 if key precedes every block.
  std::uint32_t FindBlock(std::string_view key) const;

  std::uint32_t num_blocks() const {
    return static_cast<std::uint32_t>(index_.size());
  }
  std::string_view first_key(std::uint32_t block) const {
    return index_[block].first_key;
  }
  std::uint64_t file_no() const { return file_no_; }
  const std::string& path() const { return path_; }
  std::uint64_t data_bytes() const { return data_bytes_; }
  std::uint64_t records() const { return records_; }

 private:
  SSTableReader(fs::Filesystem* fs, std::string path, std::uint64_t file_no)
      : fs_(fs), path_(std::move(path)), file_no_(file_no) {}

  struct IndexEntry {
    std::uint64_t offset;
    std::uint32_t stored_len;
    std::uint32_t record_count;
    std::string first_key;
  };

  fs::Filesystem* fs_;
  std::string path_;
  std::uint64_t file_no_;
  std::uint32_t inode_ = 0;
  std::vector<IndexEntry> index_;
  std::uint64_t data_bytes_ = 0;  // bytes covered by data blocks
  std::uint64_t records_ = 0;
};

/// Parses a decoded block payload into records (views into `payload`).
Result<std::vector<SstRecord>> ParseBlockRecords(
    std::span<const std::uint8_t> payload);

}  // namespace compstor::kv
