#include "kv/store_manager.hpp"

#include <utility>

namespace compstor::kv {

Result<KvStore*> StoreManager::Acquire(const std::string& dir,
                                       const KvOptions& options) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = stores_.find(dir);
  if (it != stores_.end()) return it->second.get();
  KvOptions opts = options;
  if (opts.budget == nullptr) opts.budget = budget_;
  COMPSTOR_ASSIGN_OR_RETURN(std::unique_ptr<KvStore> store,
                            KvStore::Open(fs_, dir, opts));
  KvStore* raw = store.get();
  stores_.emplace(dir, std::move(store));
  return raw;
}

KvStore* StoreManager::Peek(const std::string& dir) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = stores_.find(dir);
  return it == stores_.end() ? nullptr : it->second.get();
}

void StoreManager::DropAll() {
  std::lock_guard<std::mutex> guard(mutex_);
  stores_.clear();
}

std::size_t StoreManager::open_stores() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return stores_.size();
}

StoreStats StoreManager::AggregateStats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  StoreStats total;
  for (const auto& [dir, store] : stores_) {
    const StoreStats s = store->Stats();
    total.gets += s.gets;
    total.puts += s.puts;
    total.deletes += s.deletes;
    total.scans += s.scans;
    total.flushes += s.flushes;
    total.compactions += s.compactions;
    total.wal_records_replayed += s.wal_records_replayed;
    total.orphans_removed += s.orphans_removed;
    total.sstables += s.sstables;
    total.sstable_records += s.sstable_records;
    total.memtable_bytes += s.memtable_bytes;
    total.memtable_entries += s.memtable_entries;
    total.cache_bytes += s.cache_bytes;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.cache_evictions += s.cache_evictions;
  }
  return total;
}

}  // namespace compstor::kv
