#include "kv/sstable.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/byte_io.hpp"
#include "util/crc32c.hpp"

namespace compstor::kv {
namespace {

constexpr std::uint64_t kSstMagic = 0x436f6d7053737431ull;  // "CompSst1"
constexpr std::size_t kFooterBytes = 8 + 4 + 4 + 8;
constexpr std::uint8_t kFlagTombstone = 0x01;

}  // namespace

// ---------------------------------------------------------------------------
// BlockCache

BlockCache::~BlockCache() {
  if (budget_ != nullptr && bytes_ > 0) budget_->Release(bytes_);
}

BlockCache::Payload BlockCache::Get(std::uint64_t file_no,
                                    std::uint32_t block_index) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = entries_.find(Key{file_no, block_index});
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.payload;
}

void BlockCache::Insert(std::uint64_t file_no, std::uint32_t block_index,
                        Payload payload) {
  if (payload == nullptr) return;
  const std::uint64_t size = payload->size();
  if (size > capacity_) return;  // would evict everything and still not fit
  std::lock_guard<std::mutex> guard(mutex_);
  const Key key{file_no, block_index};
  if (entries_.count(key) != 0) return;
  while (bytes_ + size > capacity_ && !lru_.empty()) EvictOneLocked();
  if (budget_ != nullptr) {
    // The platform budget outranks our own capacity: evict until the
    // reservation fits, and serve uncached if it never does.
    while (!budget_->Reserve(size).ok()) {
      if (lru_.empty()) return;
      EvictOneLocked();
    }
  }
  lru_.push_front(key);
  entries_[key] = Entry{std::move(payload), lru_.begin()};
  bytes_ += size;
}

void BlockCache::EraseFile(std::uint64_t file_no) {
  std::lock_guard<std::mutex> guard(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.first != file_no) {
      ++it;
      continue;
    }
    const std::uint64_t size = it->second.payload->size();
    bytes_ -= size;
    if (budget_ != nullptr) budget_->Release(size);
    lru_.erase(it->second.lru_pos);
    it = entries_.erase(it);
  }
}

void BlockCache::EvictOneLocked() {
  const Key victim = lru_.back();
  lru_.pop_back();
  auto it = entries_.find(victim);
  const std::uint64_t size = it->second.payload->size();
  bytes_ -= size;
  if (budget_ != nullptr) budget_->Release(size);
  entries_.erase(it);
  ++evictions_;
}

std::uint64_t BlockCache::bytes() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return bytes_;
}
std::uint64_t BlockCache::hits() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return hits_;
}
std::uint64_t BlockCache::misses() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return misses_;
}
std::uint64_t BlockCache::evictions() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return evictions_;
}

// ---------------------------------------------------------------------------
// SSTableBuilder

Status SSTableBuilder::Add(std::string_view key, std::string_view value,
                           bool tombstone) {
  if (records_ > 0 && key <= last_key_) {
    return InvalidArgument("sstable keys must be strictly increasing");
  }
  if (block_.empty()) block_first_key_ = std::string(key);
  util::ByteWriter w;
  w.PutU8(tombstone ? kFlagTombstone : 0);
  w.PutU32(static_cast<std::uint32_t>(key.size()));
  w.PutU32(static_cast<std::uint32_t>(tombstone ? 0 : value.size()));
  w.PutRaw({reinterpret_cast<const std::uint8_t*>(key.data()), key.size()});
  if (!tombstone) {
    w.PutRaw({reinterpret_cast<const std::uint8_t*>(value.data()), value.size()});
  }
  const std::vector<std::uint8_t>& rec = w.bytes();
  block_.insert(block_.end(), rec.begin(), rec.end());
  ++block_records_;
  ++records_;
  last_key_ = std::string(key);
  if (block_.size() >= target_block_bytes_) SealBlock();
  return OkStatus();
}

void SSTableBuilder::SealBlock() {
  if (block_.empty()) return;
  IndexEntry entry;
  entry.offset = file_.size();
  entry.record_count = block_records_;
  entry.first_key = block_first_key_;
  util::ByteWriter w;
  w.PutU32(util::Crc32c(block_));
  w.PutU32(static_cast<std::uint32_t>(block_.size()));
  w.PutRaw(block_);
  const std::vector<std::uint8_t>& stored = w.bytes();
  entry.stored_len = static_cast<std::uint32_t>(stored.size());
  file_.insert(file_.end(), stored.begin(), stored.end());
  index_.push_back(std::move(entry));
  block_.clear();
  block_records_ = 0;
}

std::vector<std::uint8_t> SSTableBuilder::Finish() {
  SealBlock();
  const std::uint64_t index_offset = file_.size();
  util::ByteWriter idx;
  idx.PutU32(static_cast<std::uint32_t>(index_.size()));
  for (const IndexEntry& e : index_) {
    idx.PutU64(e.offset);
    idx.PutU32(e.stored_len);
    idx.PutU32(e.record_count);
    idx.PutString(e.first_key);
  }
  const std::vector<std::uint8_t>& index_bytes = idx.bytes();
  util::ByteWriter tail;
  tail.PutRaw(index_bytes);
  tail.PutU64(index_offset);
  tail.PutU32(static_cast<std::uint32_t>(index_bytes.size()));
  tail.PutU32(util::Crc32c(index_bytes));
  tail.PutU64(kSstMagic);
  const std::vector<std::uint8_t>& t = tail.bytes();
  file_.insert(file_.end(), t.begin(), t.end());
  return std::move(file_);
}

// ---------------------------------------------------------------------------
// SSTableReader

Result<std::vector<SstRecord>> ParseBlockRecords(
    std::span<const std::uint8_t> payload) {
  std::vector<SstRecord> records;
  util::ByteReader r(payload);
  while (!r.AtEnd()) {
    COMPSTOR_ASSIGN_OR_RETURN(std::uint8_t flags, r.GetU8());
    COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t klen, r.GetU32());
    COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t vlen, r.GetU32());
    if (r.remaining() < static_cast<std::size_t>(klen) + vlen) {
      return DataCorruption("sstable record overruns its block");
    }
    const std::size_t pos = payload.size() - r.remaining();
    SstRecord rec;
    rec.key = std::string_view(reinterpret_cast<const char*>(payload.data() + pos),
                               klen);
    rec.value = std::string_view(
        reinterpret_cast<const char*>(payload.data() + pos + klen), vlen);
    rec.tombstone = (flags & kFlagTombstone) != 0;
    records.push_back(rec);
    // ByteReader has no Skip; re-seat it past the record body.
    r = util::ByteReader(payload.subspan(pos + klen + vlen));
  }
  return records;
}

Result<std::unique_ptr<SSTableReader>> SSTableReader::Open(
    fs::Filesystem* fs, const std::string& path, std::uint64_t file_no) {
  auto reader = std::unique_ptr<SSTableReader>(
      new SSTableReader(fs, path, file_no));
  COMPSTOR_ASSIGN_OR_RETURN(fs::FileStat stat, fs->Stat(path));
  reader->inode_ = stat.inode;
  if (stat.size < kFooterBytes) {
    return DataCorruption("sstable " + path + " shorter than its footer");
  }
  std::uint8_t footer[kFooterBytes];
  COMPSTOR_ASSIGN_OR_RETURN(
      std::uint64_t got,
      fs->Read(stat.inode, stat.size - kFooterBytes, footer));
  if (got != kFooterBytes) return DataCorruption("sstable footer short read");
  util::ByteReader fr(footer);
  COMPSTOR_ASSIGN_OR_RETURN(std::uint64_t index_offset, fr.GetU64());
  COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t index_len, fr.GetU32());
  COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t index_crc, fr.GetU32());
  COMPSTOR_ASSIGN_OR_RETURN(std::uint64_t magic, fr.GetU64());
  if (magic != kSstMagic) {
    return DataCorruption("sstable " + path + " has a bad magic");
  }
  if (index_offset + index_len + kFooterBytes != stat.size) {
    return DataCorruption("sstable " + path + " index bounds are inconsistent");
  }
  std::vector<std::uint8_t> index_bytes(index_len);
  COMPSTOR_ASSIGN_OR_RETURN(got, fs->Read(stat.inode, index_offset, index_bytes));
  if (got != index_len) return DataCorruption("sstable index short read");
  if (util::Crc32c(index_bytes) != index_crc) {
    return DataCorruption("sstable " + path + " index CRC mismatch");
  }
  util::ByteReader ir(index_bytes);
  COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t count, ir.GetU32());
  reader->index_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    IndexEntry e;
    COMPSTOR_ASSIGN_OR_RETURN(e.offset, ir.GetU64());
    COMPSTOR_ASSIGN_OR_RETURN(e.stored_len, ir.GetU32());
    COMPSTOR_ASSIGN_OR_RETURN(e.record_count, ir.GetU32());
    COMPSTOR_ASSIGN_OR_RETURN(e.first_key, ir.GetString());
    reader->records_ += e.record_count;
    reader->index_.push_back(std::move(e));
  }
  reader->data_bytes_ = index_offset;
  return reader;
}

std::uint32_t SSTableReader::FindBlock(std::string_view key) const {
  // Last block whose first_key <= key.
  std::uint32_t lo = 0;
  std::uint32_t hi = num_blocks();
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (index_[mid].first_key <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

Result<SSTableReader::BlockHandle> SSTableReader::ReadBlock(
    std::uint32_t index, BlockCache* cache, IoStats* io) const {
  if (index >= num_blocks()) return OutOfRange("sstable block index");
  BlockCache::Payload payload;
  if (cache != nullptr) payload = cache->Get(file_no_, index);
  if (payload != nullptr) {
    if (io != nullptr) ++io->cache_hits;
  } else {
    if (io != nullptr) ++io->cache_misses;
    const IndexEntry& e = index_[index];
    std::vector<std::uint8_t> stored(e.stored_len);
    COMPSTOR_ASSIGN_OR_RETURN(std::uint64_t got,
                              fs_->Read(inode_, e.offset, stored));
    if (got != e.stored_len) {
      return DataCorruption("sstable " + path_ + " block short read");
    }
    util::ByteReader br(stored);
    COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t crc, br.GetU32());
    COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t len, br.GetU32());
    if (len != stored.size() - 8) {
      return DataCorruption("sstable " + path_ + " block length mismatch");
    }
    auto decoded = std::make_shared<std::vector<std::uint8_t>>(
        stored.begin() + 8, stored.end());
    if (util::Crc32c(*decoded) != crc) {
      return DataCorruption("sstable " + path_ + " block CRC mismatch");
    }
    if (io != nullptr) {
      ++io->blocks_read;
      io->flash_bytes_read += stored.size();
    }
    payload = decoded;
    if (cache != nullptr) cache->Insert(file_no_, index, payload);
  }
  BlockHandle handle;
  handle.payload = payload;
  COMPSTOR_ASSIGN_OR_RETURN(handle.records, ParseBlockRecords(*payload));
  return handle;
}

}  // namespace compstor::kv
