// Chunked byte-stream abstractions for the data path.
//
// The paper's in-storage workloads stream: flash reads overlap compute and
// no stage buffers a whole file (8 GB DDR4 against a 24 TB array). These
// interfaces carry that shape through the whole emulation: Filesystem hands
// out ByteSource/ByteSink over extents (fs/filesystem.hpp), apps consume
// them chunk by chunk, and shell pipelines connect stages with a bounded
// PipeRing instead of whole strings.
//
// Virtual-time awareness is injected, not built in: StreamOptions::on_chunk
// fires once per chunk moved, and the app layer charges flash/NVMe latency
// (and computes the compute/IO overlap) from there — the fs layer stays a
// pure byte mover.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/mem_budget.hpp"
#include "common/status.hpp"

namespace compstor::fs {

/// Default transfer granularity of the chunked data path. Small enough that
/// per-chunk DRAM stays negligible against the 8 GB ISPS budget, large
/// enough to amortize per-chunk model costs.
inline constexpr std::size_t kDefaultChunkBytes = 256 * 1024;

struct StreamOptions {
  std::size_t chunk_bytes = kDefaultChunkBytes;
  /// Depth-1 read-ahead: the next chunk's flash read is issued (through the
  /// owning device's IO path, on a real thread) while the caller processes
  /// the current chunk. File sources only.
  bool prefetch = false;
  /// Chunk buffers reserve here (nullptr = unaccounted).
  MemoryBudget* budget = nullptr;
  /// Fired on the consumer thread once per chunk moved, with the chunk's
  /// byte count. The app layer hooks IO-latency charging and overlap
  /// accounting here.
  std::function<void(std::size_t)> on_chunk;
};

/// Pull-based byte stream. Reads are sequential; short reads happen only at
/// end of stream.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  /// Reads up to out.size() bytes; returns the count, 0 at end of stream.
  virtual Result<std::size_t> Read(std::span<std::uint8_t> out) = 0;
  /// Total bytes this source will produce, if known up front (0 = unknown).
  /// A hint for buffer reservation, not a contract.
  virtual std::uint64_t SizeHint() const { return 0; }
};

/// Push-based byte stream. Close() flushes; writing after Close is an error.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual Status Write(std::span<const std::uint8_t> data) = 0;
  Status Write(std::string_view s) {
    return Write(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  virtual Status Close() { return OkStatus(); }
};

/// Source over a caller-owned buffer (stdin views, tests). Serves at chunk
/// granularity so per-chunk hooks fire the same way file sources do.
class MemorySource final : public ByteSource {
 public:
  explicit MemorySource(std::string_view data, const StreamOptions& options = {})
      : data_(data), options_(options) {}

  Result<std::size_t> Read(std::span<std::uint8_t> out) override;
  std::uint64_t SizeHint() const override { return data_.size() - pos_; }

 private:
  std::string_view data_;
  StreamOptions options_;
  std::size_t pos_ = 0;
};

/// Sink appending to a caller-owned string (captured stdout, tests).
class StringSink final : public ByteSink {
 public:
  explicit StringSink(std::string* out) : out_(out) {}
  Status Write(std::span<const std::uint8_t> data) override {
    out_->append(reinterpret_cast<const char*>(data.data()), data.size());
    return OkStatus();
  }

 private:
  std::string* out_;
};

/// Incremental line iterator over a ByteSource with SplitLines semantics:
/// lines come without the trailing '\n', and a trailing newline does not
/// produce an empty final line. Holds at most one chunk plus one line.
class LineReader {
 public:
  explicit LineReader(ByteSource* source,
                      std::size_t chunk_bytes = kDefaultChunkBytes)
      : source_(source), chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes) {}

  /// Fills `*line` with the next line; returns false at end of stream.
  Result<bool> Next(std::string* line);

 private:
  ByteSource* source_;
  std::size_t chunk_bytes_;
  std::string buf_;
  std::size_t pos_ = 0;
  bool eof_ = false;
};

/// Bounded byte FIFO connecting two shell pipeline stages running on real
/// threads. Back-pressure: writers block while the ring is full; readers
/// block while it is empty and the write side is open.
///
/// CloseRead() models the consumer exiting early (head, grep -q): further
/// writes succeed and discard, so producers always run to completion — the
/// serial-pipeline golden output and cost accounting are preserved while the
/// downstream stage stops waiting.
class PipeRing {
 public:
  explicit PipeRing(std::size_t capacity_bytes = kDefaultChunkBytes,
                    MemoryBudget* budget = nullptr);
  ~PipeRing();

  PipeRing(const PipeRing&) = delete;
  PipeRing& operator=(const PipeRing&) = delete;

  /// Blocks while full; data larger than the capacity is moved in pieces.
  Status Write(std::span<const std::uint8_t> data);
  /// Blocks while empty and the writer is open; returns 0 at end of stream.
  std::size_t Read(std::span<std::uint8_t> out);

  void CloseWrite();
  void CloseRead();

  std::uint64_t total_bytes() const;

 private:
  const std::size_t capacity_;
  MemoryReservation reservation_;
  mutable std::mutex mutex_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  std::vector<std::uint8_t> ring_;
  std::size_t head_ = 0;  // read position
  std::size_t size_ = 0;  // bytes currently buffered
  std::uint64_t total_ = 0;
  bool write_closed_ = false;
  bool read_closed_ = false;
};

/// ByteSource face of a PipeRing (a pipeline stage's stdin).
class RingSource final : public ByteSource {
 public:
  explicit RingSource(PipeRing* ring, std::function<void(std::size_t)> on_chunk = {})
      : ring_(ring), on_chunk_(std::move(on_chunk)) {}
  Result<std::size_t> Read(std::span<std::uint8_t> out) override;

 private:
  PipeRing* ring_;
  std::function<void(std::size_t)> on_chunk_;
};

/// ByteSink face of a PipeRing (a pipeline stage's stdout).
class RingSink final : public ByteSink {
 public:
  explicit RingSink(PipeRing* ring) : ring_(ring) {}
  Status Write(std::span<const std::uint8_t> data) override {
    return ring_->Write(data);
  }
  Status Close() override {
    ring_->CloseWrite();
    return OkStatus();
  }

 private:
  PipeRing* ring_;
};

/// Drains `source` into `sink` chunk by chunk. Returns bytes moved.
Result<std::uint64_t> CopyStream(ByteSource& source, ByteSink& sink,
                                 std::size_t chunk_bytes = kDefaultChunkBytes);

/// Drains `source` into an owned string, growing `reservation` as it goes
/// (the chunked replacement for whole-file slurps that must still buffer).
Result<std::string> DrainToString(ByteSource& source, MemoryReservation* reservation,
                                  std::size_t chunk_bytes = kDefaultChunkBytes);

}  // namespace compstor::fs
