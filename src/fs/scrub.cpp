#include "fs/scrub.hpp"

#include <string>
#include <utility>

#include "common/logging.hpp"

namespace compstor::fs {

Scrubber::Scrubber(Filesystem* fs, ssd::BlockDevice* dev) : fs_(fs), dev_(dev) {}

void Scrubber::AttachTrace(telemetry::TraceRing* trace, std::function<double()> now_s) {
  trace_ = trace;
  now_s_ = std::move(now_s);
}

Status Scrubber::RunPass() {
  active_.store(true, std::memory_order_relaxed);
  struct ActiveGuard {
    std::atomic<bool>* flag;
    ~ActiveGuard() { flag->store(false, std::memory_order_relaxed); }
  } guard{&active_};
  const double start_s = now_s_ ? now_s_() : 0.0;

  // Media stage. The block list is a point-in-time snapshot: a block freed
  // (and trimmed) after the snapshot scrubs as an unmapped no-op, a block
  // allocated after it is caught by the next pass.
  COMPSTOR_ASSIGN_OR_RETURN(std::vector<std::uint64_t> used, fs_->UsedBlocks());
  for (std::uint64_t lba : used) {
    media_blocks_.fetch_add(1, std::memory_order_relaxed);
    Status st = dev_->Scrub(lba);
    if (st.ok()) continue;
    if (st.code() == StatusCode::kDataLoss) {
      // Uncorrectable: the FTL dropped the mapping and queued the flash
      // block for retirement. The loss is permanent but contained; the
      // verify stage (and any foreground read) reports which file it hit.
      media_retired_.fetch_add(1, std::memory_order_relaxed);
      LOG_WARN << "scrub: lba " << lba << " uncorrectable, block retired";
      continue;
    }
    return st;  // transport failure (device halted, path down): abort pass
  }

  // Verify stage: end-to-end checksum audit of every live extent, one short
  // lock hold per block so foreground traffic interleaves.
  std::uint64_t failures = 0;
  COMPSTOR_ASSIGN_OR_RETURN(std::vector<std::uint32_t> inodes, fs_->LiveInodes());
  for (std::uint32_t ino : inodes) {
    Result<std::vector<std::uint64_t>> extents = fs_->InodeExtents(ino);
    if (!extents.ok()) {
      if (extents.status().code() == StatusCode::kNotFound) continue;  // unlinked meanwhile
      if (extents.status().code() == StatusCode::kDataCorruption) {
        ++failures;  // the pointer-block walk itself hit a bad checksum
        verify_failures_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      return extents.status();
    }
    for (std::uint64_t lba : *extents) {
      verify_blocks_.fetch_add(1, std::memory_order_relaxed);
      Status st = fs_->VerifyBlock(lba);
      if (st.ok()) continue;
      if (st.code() == StatusCode::kDataCorruption ||
          st.code() == StatusCode::kDataLoss) {
        ++failures;
        verify_failures_.fetch_add(1, std::memory_order_relaxed);
        LOG_WARN << "scrub: inode " << ino << " extent lba " << lba
                 << " failed verification: " << st.message();
        continue;
      }
      return st;
    }
  }

  passes_.fetch_add(1, std::memory_order_relaxed);
  if (trace_ != nullptr && now_s_) {
    const double end_s = now_s_();
    trace_->Record("scrub", "pass", passes_.load(std::memory_order_relaxed),
                   static_cast<std::uint64_t>(start_s * 1e9),
                   static_cast<std::uint64_t>(end_s * 1e9), /*tid=*/0);
  }
  if (failures > 0) {
    return DataCorruption("scrub: " + std::to_string(failures) +
                          " extent(s) failed verification");
  }
  return OkStatus();
}

ScrubStats Scrubber::Stats() const {
  ScrubStats s;
  s.passes = passes_.load(std::memory_order_relaxed);
  s.media_blocks = media_blocks_.load(std::memory_order_relaxed);
  s.media_retired = media_retired_.load(std::memory_order_relaxed);
  s.verify_blocks = verify_blocks_.load(std::memory_order_relaxed);
  s.verify_failures = verify_failures_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace compstor::fs
