#include "fs/filesystem.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstring>
#include <future>
#include <map>
#include <set>

#include "common/logging.hpp"
#include "telemetry/trace.hpp"
#include "util/crc32c.hpp"

namespace compstor::fs {

namespace {

constexpr std::uint32_t kMagic = 0x43465321;  // "!SFC"
constexpr std::uint32_t kVersion = 2;         // v2: journal + checksum table
constexpr std::uint32_t kInodeBytes = 256;
constexpr std::uint32_t kDirectPtrs = 12;
constexpr std::uint8_t kMaxNameLen = 255;

// Journal framing. One transaction occupies the journal area at a time:
// descriptor block, `count` payload blocks, then the commit block. The area
// is never erased — replay validates the commit record against the
// descriptor's CRC, and redoing an already-checkpointed transaction is
// idempotent.
constexpr std::uint32_t kJournalDescMagic = 0x4A444332;    // "2CDJ"
constexpr std::uint32_t kJournalCommitMagic = 0x4A434D32;  // "2MCJ"
constexpr std::uint32_t kTxnMaxStaged = 128;
// Commit-and-reopen when a splittable write loop gets this close to the cap
// (one loop iteration stages at most ~5 blocks: data, two pointer levels,
// inode, bitmap, plus checksum-table updates).
constexpr std::uint32_t kTxnSplitHeadroom = 16;

struct JournalDesc {
  std::uint32_t magic = 0;
  std::uint32_t count = 0;
  std::uint64_t seq = 0;
  std::uint32_t crc = 0;  // CRC32c of the whole descriptor block, this field 0
  std::uint32_t reserved = 0;
};

struct JournalEntry {
  std::uint64_t target_lba = 0;
  std::uint32_t payload_crc = 0;
  std::uint32_t reserved = 0;
};

struct JournalCommit {
  std::uint32_t magic = 0;
  std::uint32_t count = 0;
  std::uint64_t seq = 0;
  std::uint32_t desc_crc = 0;  // binds the commit to one exact descriptor
  std::uint32_t crc = 0;       // CRC32c of this block, this field 0
};

/// Checksum-table convention: entry 0 means "never written / unchecked", so
/// a data CRC that happens to be 0 is stored as 1.
std::uint32_t CksumOf(std::span<const std::uint8_t> data) {
  const std::uint32_t c = util::Crc32c(data);
  return c == 0 ? 1u : c;
}

std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) { return (a + b - 1) / b; }

/// Splits an absolute path into components; rejects empty names and
/// anything not starting with '/'.
Result<std::vector<std::string>> SplitPath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return InvalidArgument("path must be absolute");
  }
  std::vector<std::string> parts;
  std::size_t i = 1;
  while (i < path.size()) {
    std::size_t j = path.find('/', i);
    if (j == std::string_view::npos) j = path.size();
    if (j > i) {
      if (j - i > kMaxNameLen) return InvalidArgument("path component too long");
      parts.emplace_back(path.substr(i, j - i));
    }
    i = j + 1;
  }
  return parts;
}

}  // namespace

struct Filesystem::Superblock {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t block_size = 0;
  std::uint32_t inode_count = 0;
  std::uint64_t total_blocks = 0;
  std::uint64_t inode_table_start = 0;
  std::uint64_t inode_table_blocks = 0;
  std::uint64_t bitmap_start = 0;
  std::uint64_t bitmap_blocks = 0;
  std::uint64_t data_start = 0;
  std::uint64_t cksum_start = 0;    // per-block CRC32c table (4 B per lba)
  std::uint64_t cksum_blocks = 0;
  std::uint64_t journal_start = 0;  // desc + kTxnMaxStaged payloads + commit
  std::uint64_t journal_blocks = 0;
  std::uint32_t sb_crc = 0;  // CRC32c of the superblock bytes up to this field

  std::uint64_t PtrsPerBlock() const { return block_size / 8; }
  std::uint64_t MaxFileBlocks() const {
    const std::uint64_t p = PtrsPerBlock();
    return kDirectPtrs + p + p * p;
  }
};

/// In-memory state of one metadata transaction. Metadata updates are staged
/// here; data blocks freshly allocated inside the transaction are written
/// straight to the device (their bitmap bits are not durable until commit, so
/// a crash leaves them unreferenced, never torn).
struct Filesystem::Txn {
  std::map<std::uint64_t, std::vector<std::uint8_t>> staged;
  std::set<std::uint64_t> allocated;  // data blocks allocated this txn
  std::set<std::uint64_t> freed;      // excluded from realloc until commit
  std::vector<std::uint64_t> trims;   // applied after the commit record lands
};

struct Filesystem::Inode {
  std::uint32_t mode = 0;  // 0 free, 1 file, 2 dir
  std::uint32_t reserved = 0;
  std::uint64_t size = 0;
  std::uint64_t direct[kDirectPtrs] = {};
  std::uint64_t indirect = 0;
  std::uint64_t dindirect = 0;

  FileType type() const { return mode == 2 ? FileType::kDir : FileType::kFile; }
};

Filesystem::Filesystem(ssd::BlockDevice* dev, std::shared_ptr<std::mutex> lock)
    : dev_(dev), lock_(std::move(lock)) {}

Filesystem::~Filesystem() = default;

Status Filesystem::ReadBlock(std::uint64_t lba, std::span<std::uint8_t> out) {
  if (txn_ != nullptr) {
    auto it = txn_->staged.find(lba);
    if (it != txn_->staged.end()) {
      std::memcpy(out.data(), it->second.data(), out.size());
      return OkStatus();
    }
  }
  COMPSTOR_RETURN_IF_ERROR(dev_->Read(lba, out));
  // End-to-end verification: every data-area block read is checked against
  // the checksum table before its bytes feed anything (in-situ compute
  // included). Metadata blocks are covered by the journal's CRCs instead.
  if (cached_super_ != nullptr && lba >= cached_super_->data_start &&
      cached_super_->cksum_blocks > 0) {
    std::uint32_t expect = 0;
    COMPSTOR_RETURN_IF_ERROR(LoadCksumEntry(*cached_super_, lba, &expect));
    if (expect != 0) {
      cksum_checks_.fetch_add(1, std::memory_order_relaxed);
      if (CksumOf(out) != expect) {
        cksum_failures_.fetch_add(1, std::memory_order_relaxed);
        return DataCorruption("block " + std::to_string(lba) +
                              ": checksum mismatch");
      }
    }
  }
  return OkStatus();
}

Status Filesystem::WriteBlock(std::uint64_t lba, std::span<const std::uint8_t> data) {
  const bool is_data =
      cached_super_ != nullptr && lba >= cached_super_->data_start;
  if (txn_ == nullptr) {
    COMPSTOR_RETURN_IF_ERROR(dev_->Write(lba, data));
  } else if (is_data && txn_->allocated.count(lba) != 0) {
    // Freshly allocated this transaction: unreferenced until the commit makes
    // the bitmap/inode updates durable, so write-through is crash-safe and
    // keeps bulk data out of the journal.
    COMPSTOR_RETURN_IF_ERROR(dev_->Write(lba, data));
  } else {
    txn_->staged[lba].assign(data.begin(), data.end());
    if (txn_->staged.size() > kTxnMaxStaged) {
      return ResourceExhausted("transaction exceeds journal capacity");
    }
  }
  if (is_data) {
    COMPSTOR_RETURN_IF_ERROR(StoreCksumEntry(*cached_super_, lba, CksumOf(data)));
  }
  return OkStatus();
}

Status Filesystem::LoadCksumEntry(const Superblock& sb, std::uint64_t lba,
                                  std::uint32_t* out) {
  const std::uint64_t byte_off = lba * 4;
  const std::uint64_t table_lba = sb.cksum_start + byte_off / sb.block_size;
  std::vector<std::uint8_t> block(sb.block_size);
  // The table lives in the metadata area, so this nested ReadBlock cannot
  // recurse into another checksum lookup.
  COMPSTOR_RETURN_IF_ERROR(ReadBlock(table_lba, block));
  std::memcpy(out, block.data() + byte_off % sb.block_size, 4);
  return OkStatus();
}

Status Filesystem::StoreCksumEntry(const Superblock& sb, std::uint64_t lba,
                                   std::uint32_t value) {
  const std::uint64_t byte_off = lba * 4;
  const std::uint64_t table_lba = sb.cksum_start + byte_off / sb.block_size;
  std::vector<std::uint8_t> block(sb.block_size);
  COMPSTOR_RETURN_IF_ERROR(ReadBlock(table_lba, block));
  std::memcpy(block.data() + byte_off % sb.block_size, &value, 4);
  return WriteBlock(table_lba, block);
}

// ---------------------------------------------------------------------------
// Transactions and the journal
// ---------------------------------------------------------------------------

Status Filesystem::BeginTxn() {
  if (txn_ != nullptr) return Internal("transaction already open");
  txn_ = std::make_unique<Txn>();
  return OkStatus();
}

void Filesystem::AbortTxn() {
  if (txn_ == nullptr) return;
  txn_aborts_.fetch_add(1, std::memory_order_relaxed);
  txn_.reset();
}

Status Filesystem::FinishTxn(Status op_status) {
  if (!op_status.ok()) {
    AbortTxn();
    return op_status;
  }
  return CommitTxn();
}

Status Filesystem::MaybeSplitTxn() {
  if (txn_ == nullptr || !txn_allow_split_) return OkStatus();
  if (txn_->staged.size() + kTxnSplitHeadroom < kTxnMaxStaged) return OkStatus();
  COMPSTOR_RETURN_IF_ERROR(CommitTxn());
  return BeginTxn();
}

Status Filesystem::CommitTxn() {
  std::unique_ptr<Txn> txn = std::move(txn_);
  if (txn == nullptr) return Internal("no transaction open");
  if (txn->staged.empty()) {
    // Pure-data transaction (all blocks freshly allocated and written
    // through) stages nothing; frees always stage a bitmap block, so the
    // trim list must be empty here too.
    return OkStatus();
  }
  Superblock sb;
  COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
  const auto count = static_cast<std::uint32_t>(txn->staged.size());
  if (count > kTxnMaxStaged) {
    return ResourceExhausted("transaction exceeds journal capacity");
  }

  // The next sequence number comes from the on-device descriptor every time:
  // another instance mounted over the same SSD may have committed since.
  std::vector<std::uint8_t> block(sb.block_size, 0);
  COMPSTOR_RETURN_IF_ERROR(dev_->Read(sb.journal_start, block));
  JournalDesc prev;
  std::memcpy(&prev, block.data(), sizeof(prev));
  const std::uint64_t seq = (prev.magic == kJournalDescMagic) ? prev.seq + 1 : 1;

  // Descriptor block: header + one entry per staged block.
  std::fill(block.begin(), block.end(), 0);
  JournalDesc desc;
  desc.magic = kJournalDescMagic;
  desc.count = count;
  desc.seq = seq;
  std::memcpy(block.data(), &desc, sizeof(desc));
  std::size_t entry_off = sizeof(JournalDesc);
  for (const auto& [lba, payload] : txn->staged) {
    JournalEntry entry;
    entry.target_lba = lba;
    entry.payload_crc = util::Crc32c(payload);
    std::memcpy(block.data() + entry_off, &entry, sizeof(entry));
    entry_off += sizeof(JournalEntry);
  }
  const std::uint32_t desc_crc = util::Crc32c(block.data(), block.size());
  std::memcpy(block.data() + offsetof(JournalDesc, crc), &desc_crc, 4);

  // Phase 1: descriptor + payloads, then a barrier. Raw device IO — the
  // journal area must never be routed through staging.
  COMPSTOR_RETURN_IF_ERROR(dev_->Write(sb.journal_start, block));
  std::uint64_t payload_lba = sb.journal_start + 1;
  for (const auto& [lba, payload] : txn->staged) {
    (void)lba;
    COMPSTOR_RETURN_IF_ERROR(dev_->Write(payload_lba++, payload));
  }
  COMPSTOR_RETURN_IF_ERROR(dev_->Flush());

  // Phase 2: the commit record is the atomic switch — once durable, the
  // transaction redoes on the next mount no matter where the power cut lands.
  std::fill(block.begin(), block.end(), 0);
  JournalCommit commit;
  commit.magic = kJournalCommitMagic;
  commit.count = count;
  commit.seq = seq;
  commit.desc_crc = desc_crc;
  std::memcpy(block.data(), &commit, sizeof(commit));
  const std::uint32_t commit_crc = util::Crc32c(block.data(), block.size());
  std::memcpy(block.data() + offsetof(JournalCommit, crc), &commit_crc, 4);
  COMPSTOR_RETURN_IF_ERROR(dev_->Write(sb.journal_start + 1 + count, block));
  COMPSTOR_RETURN_IF_ERROR(dev_->Flush());

  // Phase 3: checkpoint to home locations, then release the dead blocks.
  for (const auto& [lba, payload] : txn->staged) {
    COMPSTOR_RETURN_IF_ERROR(dev_->Write(lba, payload));
  }
  COMPSTOR_RETURN_IF_ERROR(dev_->Flush());
  for (std::uint64_t lba : txn->trims) {
    COMPSTOR_RETURN_IF_ERROR(dev_->Trim(lba, 1));
  }
  journal_commits_.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Status Filesystem::ReplayJournal(const Superblock& sb) {
  std::vector<std::uint8_t> block(sb.block_size);
  COMPSTOR_RETURN_IF_ERROR(dev_->Read(sb.journal_start, block));
  JournalDesc desc;
  std::memcpy(&desc, block.data(), sizeof(desc));
  if (desc.magic != kJournalDescMagic || desc.count == 0 ||
      desc.count > kTxnMaxStaged) {
    return OkStatus();  // fresh or torn descriptor: old state stands
  }
  std::vector<std::uint8_t> desc_block = block;
  std::memset(desc_block.data() + offsetof(JournalDesc, crc), 0, 4);
  const std::uint32_t desc_crc = util::Crc32c(desc_block.data(), desc_block.size());
  if (desc_crc != desc.crc) return OkStatus();  // torn descriptor write

  std::vector<JournalEntry> entries(desc.count);
  std::memcpy(entries.data(), block.data() + sizeof(JournalDesc),
              entries.size() * sizeof(JournalEntry));

  COMPSTOR_RETURN_IF_ERROR(dev_->Read(sb.journal_start + 1 + desc.count, block));
  JournalCommit commit;
  std::memcpy(&commit, block.data(), sizeof(commit));
  if (commit.magic != kJournalCommitMagic || commit.seq != desc.seq ||
      commit.count != desc.count || commit.desc_crc != desc.crc) {
    return OkStatus();  // uncommitted transaction: old state stands
  }
  std::vector<std::uint8_t> commit_block = block;
  std::memset(commit_block.data() + offsetof(JournalCommit, crc), 0, 4);
  if (util::Crc32c(commit_block.data(), commit_block.size()) != commit.crc) {
    return OkStatus();  // torn commit write
  }

  // Committed: the payloads were durable before the commit record, so any
  // damage here is real media corruption, not an interrupted write.
  for (std::uint32_t i = 0; i < desc.count; ++i) {
    COMPSTOR_RETURN_IF_ERROR(dev_->Read(sb.journal_start + 1 + i, block));
    if (util::Crc32c(block.data(), block.size()) != entries[i].payload_crc) {
      return DataCorruption("journal payload " + std::to_string(i) +
                            " damaged; cannot recover");
    }
    if (entries[i].target_lba >= sb.total_blocks) {
      return DataCorruption("journal entry " + std::to_string(i) +
                            " targets an out-of-range block");
    }
  }
  for (std::uint32_t i = 0; i < desc.count; ++i) {
    COMPSTOR_RETURN_IF_ERROR(dev_->Read(sb.journal_start + 1 + i, block));
    COMPSTOR_RETURN_IF_ERROR(dev_->Write(entries[i].target_lba, block));
  }
  COMPSTOR_RETURN_IF_ERROR(dev_->Flush());
  journal_replays_.fetch_add(1, std::memory_order_relaxed);
  journal_replayed_blocks_.fetch_add(desc.count, std::memory_order_relaxed);
  return OkStatus();
}

Status Filesystem::Format(ssd::BlockDevice* dev, const FormatOptions& options) {
  const std::uint32_t bs = dev->block_size();
  const std::uint64_t total = dev->block_count();

  Superblock sb;
  sb.block_size = bs;
  sb.total_blocks = total;
  sb.inode_count = options.inode_count;
  sb.inode_table_start = 1;
  sb.inode_table_blocks = CeilDiv(static_cast<std::uint64_t>(options.inode_count) * kInodeBytes, bs);
  sb.bitmap_start = sb.inode_table_start + sb.inode_table_blocks;
  sb.bitmap_blocks = CeilDiv(total, static_cast<std::uint64_t>(bs) * 8);
  sb.cksum_start = sb.bitmap_start + sb.bitmap_blocks;
  sb.cksum_blocks = CeilDiv(total * 4, bs);
  sb.journal_start = sb.cksum_start + sb.cksum_blocks;
  sb.journal_blocks = kTxnMaxStaged + 2;  // descriptor + payloads + commit
  sb.data_start = sb.journal_start + sb.journal_blocks;
  if (sb.data_start + 8 >= total) {
    return InvalidArgument("device too small for filesystem metadata");
  }

  std::vector<std::uint8_t> block(bs, 0);

  // Superblock, self-checksummed (the buffer is zeroed, so struct padding
  // contributes deterministic bytes to the CRC).
  std::memcpy(block.data(), &sb, sizeof(sb));
  const std::uint32_t sb_crc =
      util::Crc32c(block.data(), offsetof(Superblock, sb_crc));
  std::memcpy(block.data() + offsetof(Superblock, sb_crc), &sb_crc, 4);
  COMPSTOR_RETURN_IF_ERROR(dev->Write(0, block));

  // Inode table: all free except the root directory (inode 0).
  std::fill(block.begin(), block.end(), 0);
  Inode root;
  root.mode = 2;
  std::memcpy(block.data(), &root, sizeof(root));
  COMPSTOR_RETURN_IF_ERROR(dev->Write(sb.inode_table_start, block));
  std::fill(block.begin(), block.end(), 0);
  for (std::uint64_t b = 1; b < sb.inode_table_blocks; ++b) {
    COMPSTOR_RETURN_IF_ERROR(dev->Write(sb.inode_table_start + b, block));
  }

  // Bitmap: metadata blocks [0, data_start) are in use.
  for (std::uint64_t b = 0; b < sb.bitmap_blocks; ++b) {
    std::fill(block.begin(), block.end(), 0);
    const std::uint64_t first_bit = b * bs * 8;
    for (std::uint64_t bit = 0; bit < static_cast<std::uint64_t>(bs) * 8; ++bit) {
      const std::uint64_t lba = first_bit + bit;
      if (lba >= sb.data_start) break;
      block[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    COMPSTOR_RETURN_IF_ERROR(dev->Write(sb.bitmap_start + b, block));
  }

  // Checksum table: all entries 0 ("unchecked") until first write.
  std::fill(block.begin(), block.end(), 0);
  for (std::uint64_t b = 0; b < sb.cksum_blocks; ++b) {
    COMPSTOR_RETURN_IF_ERROR(dev->Write(sb.cksum_start + b, block));
  }
  // Journal: zero the descriptor so a stale committed transaction from a
  // previous filesystem generation can never replay onto this one.
  COMPSTOR_RETURN_IF_ERROR(dev->Write(sb.journal_start, block));
  return dev->Flush();
}

Status Filesystem::Mount() {
  static_assert(sizeof(Superblock) <= 4096, "superblock must fit a block");
  static_assert(sizeof(Inode) <= kInodeBytes, "inode must fit its slot");
  static_assert(sizeof(JournalDesc) +
                        kTxnMaxStaged * sizeof(JournalEntry) <= 4096,
                "journal descriptor must fit a block");
  Superblock sb;
  COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
  // Crash recovery: redo the last committed transaction (idempotent if it
  // was already checkpointed).
  COMPSTOR_RETURN_IF_ERROR(ReplayJournal(sb));
  mounted_ = true;
  return OkStatus();
}

Status Filesystem::LoadSuper(Superblock* sb) {
  // Immutable after Format: cache after the first successful load.
  if (cached_super_ != nullptr) {
    *sb = *cached_super_;
    return OkStatus();
  }
  std::vector<std::uint8_t> block(dev_->block_size());
  COMPSTOR_RETURN_IF_ERROR(ReadBlock(0, block));
  std::memcpy(sb, block.data(), sizeof(*sb));
  if (sb->magic != kMagic) return FailedPrecondition("no filesystem on device");
  if (sb->version != kVersion) {
    return Unimplemented("unsupported fs version " + std::to_string(sb->version) +
                         " (want " + std::to_string(kVersion) + ")");
  }
  if (util::Crc32c(block.data(), offsetof(Superblock, sb_crc)) != sb->sb_crc) {
    return DataCorruption("superblock checksum mismatch");
  }
  if (sb->block_size != dev_->block_size()) {
    return InvalidArgument("fs block size mismatch");
  }
  cached_super_ = std::make_unique<Superblock>(*sb);
  return OkStatus();
}

Status Filesystem::LoadInode(const Superblock& sb, std::uint32_t ino, Inode* inode) {
  if (ino >= sb.inode_count) return OutOfRange("inode number out of range");
  const std::uint64_t byte_off = static_cast<std::uint64_t>(ino) * kInodeBytes;
  const std::uint64_t lba = sb.inode_table_start + byte_off / sb.block_size;
  std::vector<std::uint8_t> block(sb.block_size);
  COMPSTOR_RETURN_IF_ERROR(ReadBlock(lba, block));
  std::memcpy(inode, block.data() + byte_off % sb.block_size, sizeof(*inode));
  return OkStatus();
}

Status Filesystem::StoreInode(const Superblock& sb, std::uint32_t ino, const Inode& inode) {
  if (ino >= sb.inode_count) return OutOfRange("inode number out of range");
  const std::uint64_t byte_off = static_cast<std::uint64_t>(ino) * kInodeBytes;
  const std::uint64_t lba = sb.inode_table_start + byte_off / sb.block_size;
  std::vector<std::uint8_t> block(sb.block_size);
  COMPSTOR_RETURN_IF_ERROR(ReadBlock(lba, block));
  std::memcpy(block.data() + byte_off % sb.block_size, &inode, sizeof(inode));
  return WriteBlock(lba, block);
}

Result<std::uint32_t> Filesystem::AllocInode(const Superblock& sb, FileType type) {
  std::vector<std::uint8_t> block(sb.block_size);
  const std::uint32_t per_block = sb.block_size / kInodeBytes;
  for (std::uint64_t b = 0; b < sb.inode_table_blocks; ++b) {
    COMPSTOR_RETURN_IF_ERROR(ReadBlock(sb.inode_table_start + b, block));
    for (std::uint32_t i = 0; i < per_block; ++i) {
      const std::uint32_t ino = static_cast<std::uint32_t>(b * per_block + i);
      if (ino >= sb.inode_count) break;
      Inode node;
      std::memcpy(&node, block.data() + static_cast<std::size_t>(i) * kInodeBytes, sizeof(node));
      if (node.mode == 0) {
        Inode fresh;
        fresh.mode = (type == FileType::kDir) ? 2u : 1u;
        std::memcpy(block.data() + static_cast<std::size_t>(i) * kInodeBytes, &fresh, sizeof(fresh));
        COMPSTOR_RETURN_IF_ERROR(WriteBlock(sb.inode_table_start + b, block));
        return ino;
      }
    }
  }
  return ResourceExhausted("out of inodes");
}

Result<std::uint64_t> Filesystem::AllocBlock(const Superblock& sb, bool zero_fill) {
  std::vector<std::uint8_t> block(sb.block_size);
  // Scan from the cursor and wrap: the common case finds a free bit in the
  // first bitmap block it touches instead of rescanning from the start.
  for (std::uint64_t scanned = 0; scanned < sb.bitmap_blocks; ++scanned) {
    const std::uint64_t b = (alloc_cursor_ + scanned) % sb.bitmap_blocks;
    COMPSTOR_RETURN_IF_ERROR(ReadBlock(sb.bitmap_start + b, block));
    for (std::uint64_t byte = 0; byte < sb.block_size; ++byte) {
      if (block[byte] == 0xFF) continue;
      for (int bit = 0; bit < 8; ++bit) {
        if (block[byte] & (1u << bit)) continue;
        const std::uint64_t lba = (b * sb.block_size + byte) * 8 + static_cast<std::uint64_t>(bit);
        if (lba >= sb.total_blocks) break;  // padding bits past the device end
        // A block freed earlier in this transaction still holds pre-txn
        // content whose free is not durable yet; reusing (and overwriting)
        // it before commit would tear the old state on a crash.
        if (txn_ != nullptr && txn_->freed.count(lba) != 0) continue;
        block[byte] |= static_cast<std::uint8_t>(1u << bit);
        COMPSTOR_RETURN_IF_ERROR(WriteBlock(sb.bitmap_start + b, block));
        alloc_cursor_ = b;
        if (txn_ != nullptr) txn_->allocated.insert(lba);
        if (zero_fill) {
          // Partial writes and indirect pointer blocks rely on fresh blocks
          // reading as zeros (the flash may hold stale freed data).
          std::vector<std::uint8_t> zero(sb.block_size, 0);
          COMPSTOR_RETURN_IF_ERROR(WriteBlock(lba, zero));
        }
        return lba;
      }
    }
  }
  return ResourceExhausted("filesystem full");
}

Status Filesystem::FreeBlock(const Superblock& sb, std::uint64_t lba) {
  if (lba < sb.data_start || lba >= sb.total_blocks) {
    return Internal("freeing metadata block");
  }
  const std::uint64_t bitmap_block = lba / (static_cast<std::uint64_t>(sb.block_size) * 8);
  const std::uint64_t bit_in_block = lba % (static_cast<std::uint64_t>(sb.block_size) * 8);
  std::vector<std::uint8_t> block(sb.block_size);
  COMPSTOR_RETURN_IF_ERROR(ReadBlock(sb.bitmap_start + bitmap_block, block));
  block[bit_in_block / 8] &= static_cast<std::uint8_t>(~(1u << (bit_in_block % 8)));
  COMPSTOR_RETURN_IF_ERROR(WriteBlock(sb.bitmap_start + bitmap_block, block));
  COMPSTOR_RETURN_IF_ERROR(StoreCksumEntry(sb, lba, 0));
  if (txn_ != nullptr) {
    // The trim destroys the block's content; defer it until the commit
    // record makes the free durable.
    txn_->allocated.erase(lba);
    txn_->freed.insert(lba);
    txn_->trims.push_back(lba);
    return OkStatus();
  }
  // Tell the FTL the block's contents are dead — the fs/ftl trim integration.
  return dev_->Trim(lba, 1);
}

Result<std::uint64_t> Filesystem::MapBlock(const Superblock& sb, Inode* inode,
                                           std::uint32_t ino, std::uint64_t fbi,
                                           bool allocate, bool zero_new) {
  const std::uint64_t P = sb.PtrsPerBlock();
  if (fbi >= sb.MaxFileBlocks()) return OutOfRange("file too large");

  auto load_ptr_block = [&](std::uint64_t lba, std::vector<std::uint64_t>* ptrs) -> Status {
    std::vector<std::uint8_t> raw(sb.block_size);
    COMPSTOR_RETURN_IF_ERROR(ReadBlock(lba, raw));
    ptrs->resize(P);
    std::memcpy(ptrs->data(), raw.data(), sb.block_size);
    return OkStatus();
  };
  auto store_ptr_block = [&](std::uint64_t lba, const std::vector<std::uint64_t>& ptrs) -> Status {
    std::vector<std::uint8_t> raw(sb.block_size);
    std::memcpy(raw.data(), ptrs.data(), sb.block_size);
    return WriteBlock(lba, raw);
  };

  bool inode_dirty = false;
  std::uint64_t result = 0;

  if (fbi < kDirectPtrs) {
    if (inode->direct[fbi] == 0 && allocate) {
      COMPSTOR_ASSIGN_OR_RETURN(inode->direct[fbi], AllocBlock(sb, zero_new));
      inode_dirty = true;
    }
    result = inode->direct[fbi];
  } else if (fbi < kDirectPtrs + P) {
    if (inode->indirect == 0) {
      if (!allocate) return std::uint64_t{0};
      COMPSTOR_ASSIGN_OR_RETURN(inode->indirect, AllocBlock(sb));
      inode_dirty = true;
    }
    std::vector<std::uint64_t> ptrs;
    COMPSTOR_RETURN_IF_ERROR(load_ptr_block(inode->indirect, &ptrs));
    const std::uint64_t idx = fbi - kDirectPtrs;
    if (ptrs[idx] == 0 && allocate) {
      COMPSTOR_ASSIGN_OR_RETURN(ptrs[idx], AllocBlock(sb, zero_new));
      COMPSTOR_RETURN_IF_ERROR(store_ptr_block(inode->indirect, ptrs));
    }
    result = ptrs[idx];
  } else {
    const std::uint64_t idx = fbi - kDirectPtrs - P;
    const std::uint64_t outer = idx / P;
    const std::uint64_t inner = idx % P;
    if (inode->dindirect == 0) {
      if (!allocate) return std::uint64_t{0};
      COMPSTOR_ASSIGN_OR_RETURN(inode->dindirect, AllocBlock(sb));
      inode_dirty = true;
    }
    std::vector<std::uint64_t> outer_ptrs;
    COMPSTOR_RETURN_IF_ERROR(load_ptr_block(inode->dindirect, &outer_ptrs));
    if (outer_ptrs[outer] == 0) {
      if (!allocate) return std::uint64_t{0};
      COMPSTOR_ASSIGN_OR_RETURN(outer_ptrs[outer], AllocBlock(sb));
      COMPSTOR_RETURN_IF_ERROR(store_ptr_block(inode->dindirect, outer_ptrs));
    }
    std::vector<std::uint64_t> inner_ptrs;
    COMPSTOR_RETURN_IF_ERROR(load_ptr_block(outer_ptrs[outer], &inner_ptrs));
    if (inner_ptrs[inner] == 0 && allocate) {
      COMPSTOR_ASSIGN_OR_RETURN(inner_ptrs[inner], AllocBlock(sb, zero_new));
      COMPSTOR_RETURN_IF_ERROR(store_ptr_block(outer_ptrs[outer], inner_ptrs));
    }
    result = inner_ptrs[inner];
  }

  if (inode_dirty) {
    COMPSTOR_RETURN_IF_ERROR(StoreInode(sb, ino, *inode));
  }
  return result;
}

Status Filesystem::FreeFileBlocks(const Superblock& sb, Inode* inode,
                                  std::uint64_t from_fbi) {
  const std::uint64_t P = sb.PtrsPerBlock();

  auto load_ptr_block = [&](std::uint64_t lba, std::vector<std::uint64_t>* ptrs) -> Status {
    std::vector<std::uint8_t> raw(sb.block_size);
    COMPSTOR_RETURN_IF_ERROR(ReadBlock(lba, raw));
    ptrs->resize(P);
    std::memcpy(ptrs->data(), raw.data(), sb.block_size);
    return OkStatus();
  };
  auto store_ptr_block = [&](std::uint64_t lba, const std::vector<std::uint64_t>& ptrs) -> Status {
    std::vector<std::uint8_t> raw(sb.block_size);
    std::memcpy(raw.data(), ptrs.data(), sb.block_size);
    return WriteBlock(lba, raw);
  };

  // Direct pointers.
  for (std::uint64_t i = std::min<std::uint64_t>(from_fbi, kDirectPtrs); i < kDirectPtrs; ++i) {
    if (inode->direct[i] != 0) {
      COMPSTOR_RETURN_IF_ERROR(FreeBlock(sb, inode->direct[i]));
      inode->direct[i] = 0;
    }
  }

  // Single indirect.
  if (inode->indirect != 0) {
    std::vector<std::uint64_t> ptrs;
    COMPSTOR_RETURN_IF_ERROR(load_ptr_block(inode->indirect, &ptrs));
    const std::uint64_t keep = from_fbi > kDirectPtrs ? from_fbi - kDirectPtrs : 0;
    bool any_kept = false;
    bool dirty = false;
    for (std::uint64_t i = 0; i < P; ++i) {
      if (ptrs[i] == 0) continue;
      if (i < keep) {
        any_kept = true;
      } else {
        COMPSTOR_RETURN_IF_ERROR(FreeBlock(sb, ptrs[i]));
        ptrs[i] = 0;
        dirty = true;
      }
    }
    if (!any_kept) {
      COMPSTOR_RETURN_IF_ERROR(FreeBlock(sb, inode->indirect));
      inode->indirect = 0;
    } else if (dirty) {
      COMPSTOR_RETURN_IF_ERROR(store_ptr_block(inode->indirect, ptrs));
    }
  }

  // Double indirect.
  if (inode->dindirect != 0) {
    std::vector<std::uint64_t> outer_ptrs;
    COMPSTOR_RETURN_IF_ERROR(load_ptr_block(inode->dindirect, &outer_ptrs));
    const std::uint64_t base = kDirectPtrs + P;
    const std::uint64_t keep = from_fbi > base ? from_fbi - base : 0;
    bool any_outer_kept = false;
    bool outer_dirty = false;
    for (std::uint64_t o = 0; o < P; ++o) {
      if (outer_ptrs[o] == 0) continue;
      std::vector<std::uint64_t> inner_ptrs;
      COMPSTOR_RETURN_IF_ERROR(load_ptr_block(outer_ptrs[o], &inner_ptrs));
      bool any_inner_kept = false;
      bool inner_dirty = false;
      for (std::uint64_t i = 0; i < P; ++i) {
        if (inner_ptrs[i] == 0) continue;
        const std::uint64_t fbi = o * P + i;
        if (fbi < keep) {
          any_inner_kept = true;
        } else {
          COMPSTOR_RETURN_IF_ERROR(FreeBlock(sb, inner_ptrs[i]));
          inner_ptrs[i] = 0;
          inner_dirty = true;
        }
      }
      if (!any_inner_kept) {
        COMPSTOR_RETURN_IF_ERROR(FreeBlock(sb, outer_ptrs[o]));
        outer_ptrs[o] = 0;
        outer_dirty = true;
      } else {
        any_outer_kept = true;
        if (inner_dirty) {
          COMPSTOR_RETURN_IF_ERROR(store_ptr_block(outer_ptrs[o], inner_ptrs));
        }
      }
    }
    if (!any_outer_kept) {
      COMPSTOR_RETURN_IF_ERROR(FreeBlock(sb, inode->dindirect));
      inode->dindirect = 0;
    } else if (outer_dirty) {
      COMPSTOR_RETURN_IF_ERROR(store_ptr_block(inode->dindirect, outer_ptrs));
    }
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// File IO
// ---------------------------------------------------------------------------

Result<std::uint64_t> Filesystem::Read(std::uint32_t inode, std::uint64_t offset,
                                       std::span<std::uint8_t> out) {
  std::lock_guard<std::mutex> guard(*lock_);
  return ReadLocked(inode, offset, out);
}

Result<std::uint64_t> Filesystem::ReadLocked(std::uint32_t ino, std::uint64_t offset,
                                             std::span<std::uint8_t> out) {
  Superblock sb;
  COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
  Inode node;
  COMPSTOR_RETURN_IF_ERROR(LoadInode(sb, ino, &node));
  if (node.mode == 0) return NotFound("inode is free");

  if (offset >= node.size) return std::uint64_t{0};
  const std::uint64_t want = std::min<std::uint64_t>(out.size(), node.size - offset);

  std::vector<std::uint8_t> block(sb.block_size);
  std::uint64_t done = 0;
  while (done < want) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t fbi = pos / sb.block_size;
    const std::uint64_t in_block = pos % sb.block_size;
    const std::uint64_t chunk = std::min<std::uint64_t>(want - done, sb.block_size - in_block);
    COMPSTOR_ASSIGN_OR_RETURN(std::uint64_t lba, MapBlock(sb, &node, ino, fbi, false));
    if (lba == 0) {
      std::memset(out.data() + done, 0, chunk);  // hole
    } else {
      COMPSTOR_RETURN_IF_ERROR(ReadBlock(lba, block));
      std::memcpy(out.data() + done, block.data() + in_block, chunk);
    }
    done += chunk;
  }
  return done;
}

Status Filesystem::Write(std::uint32_t inode, std::uint64_t offset,
                         std::span<const std::uint8_t> data) {
  std::lock_guard<std::mutex> guard(*lock_);
  COMPSTOR_RETURN_IF_ERROR(BeginTxn());
  txn_allow_split_ = true;
  Status st = WriteLocked(inode, offset, data);
  txn_allow_split_ = false;
  return FinishTxn(st);
}

Status Filesystem::WriteLocked(std::uint32_t ino, std::uint64_t offset,
                               std::span<const std::uint8_t> data) {
  Superblock sb;
  COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
  Inode node;
  COMPSTOR_RETURN_IF_ERROR(LoadInode(sb, ino, &node));
  if (node.mode == 0) return NotFound("inode is free");

  // Extending past EOF: stale bytes between old size and the new write start
  // inside the last allocated block must read back as zeros. Blocks were
  // zeroed at allocation and Read clamps at size, so a gap within an already
  // written block only holds zeros if nothing was written there before —
  // which holds because Write only deposits payload bytes and Truncate zeros
  // tails. No action needed here beyond careful Truncate.

  std::vector<std::uint8_t> block(sb.block_size);
  std::uint64_t done = 0;
  while (done < data.size()) {
    // Bulk writes commit in installments so the staged metadata never
    // outgrows the journal. Only data write loops may split (see
    // txn_allow_split_): each installment is a consistent prefix because the
    // file size is stamped by the final StoreInode.
    COMPSTOR_RETURN_IF_ERROR(MaybeSplitTxn());
    const std::uint64_t pos = offset + done;
    const std::uint64_t fbi = pos / sb.block_size;
    const std::uint64_t in_block = pos % sb.block_size;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(data.size() - done, sb.block_size - in_block);
    // A full-block write overwrites everything: skip the allocator's
    // zero-fill for that case.
    COMPSTOR_ASSIGN_OR_RETURN(
        std::uint64_t lba,
        MapBlock(sb, &node, ino, fbi, /*allocate=*/true,
                 /*zero_new=*/chunk != sb.block_size));
    if (chunk == sb.block_size) {
      COMPSTOR_RETURN_IF_ERROR(
          WriteBlock(lba, data.subspan(done, sb.block_size)));
    } else {
      COMPSTOR_RETURN_IF_ERROR(ReadBlock(lba, block));
      std::memcpy(block.data() + in_block, data.data() + done, chunk);
      COMPSTOR_RETURN_IF_ERROR(WriteBlock(lba, block));
    }
    done += chunk;
  }

  const std::uint64_t end = offset + data.size();
  if (end > node.size) {
    node.size = end;
  }
  return StoreInode(sb, ino, node);
}

Status Filesystem::Truncate(std::uint32_t inode, std::uint64_t new_size) {
  std::lock_guard<std::mutex> guard(*lock_);
  COMPSTOR_RETURN_IF_ERROR(BeginTxn());
  return FinishTxn(TruncateLocked(inode, new_size));
}

Status Filesystem::TruncateLocked(std::uint32_t ino, std::uint64_t new_size) {
  Superblock sb;
  COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
  Inode node;
  COMPSTOR_RETURN_IF_ERROR(LoadInode(sb, ino, &node));
  if (node.mode == 0) return NotFound("inode is free");
  if (new_size >= node.size) {
    node.size = new_size;  // extension: reads of the hole yield zeros
    return StoreInode(sb, ino, node);
  }

  // Zero the tail of the new last block so a later extension cannot expose
  // stale bytes.
  const std::uint64_t keep_blocks = CeilDiv(new_size, sb.block_size);
  if (new_size % sb.block_size != 0) {
    COMPSTOR_ASSIGN_OR_RETURN(std::uint64_t lba,
                              MapBlock(sb, &node, ino, keep_blocks - 1, false));
    if (lba != 0) {
      std::vector<std::uint8_t> block(sb.block_size);
      COMPSTOR_RETURN_IF_ERROR(ReadBlock(lba, block));
      std::memset(block.data() + new_size % sb.block_size, 0,
                  sb.block_size - new_size % sb.block_size);
      COMPSTOR_RETURN_IF_ERROR(WriteBlock(lba, block));
    }
  }
  COMPSTOR_RETURN_IF_ERROR(FreeFileBlocks(sb, &node, keep_blocks));
  node.size = new_size;
  return StoreInode(sb, ino, node);
}

Result<FileStat> Filesystem::StatInode(std::uint32_t ino) {
  std::lock_guard<std::mutex> guard(*lock_);
  Superblock sb;
  COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
  Inode node;
  COMPSTOR_RETURN_IF_ERROR(LoadInode(sb, ino, &node));
  if (node.mode == 0) return NotFound("inode is free");
  return FileStat{ino, node.type(), node.size};
}

// ---------------------------------------------------------------------------
// Directories and paths
// ---------------------------------------------------------------------------

Result<std::vector<DirEntry>> Filesystem::ReadDirInode(std::uint32_t ino) {
  Superblock sb;
  COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
  Inode node;
  COMPSTOR_RETURN_IF_ERROR(LoadInode(sb, ino, &node));
  if (node.mode != 2) return FailedPrecondition("not a directory");

  std::vector<std::uint8_t> raw(node.size);
  COMPSTOR_ASSIGN_OR_RETURN(std::uint64_t n, ReadLocked(ino, 0, raw));
  if (n != node.size) return Internal("short directory read");

  std::vector<DirEntry> entries;
  std::size_t pos = 0;
  while (pos + 6 <= raw.size()) {
    DirEntry e;
    std::uint32_t entry_ino;
    std::memcpy(&entry_ino, raw.data() + pos, 4);
    e.inode = entry_ino;
    e.type = static_cast<FileType>(raw[pos + 4]);
    const std::uint8_t len = raw[pos + 5];
    if (pos + 6 + len > raw.size()) return DataLoss("corrupt directory entry");
    e.name.assign(reinterpret_cast<const char*>(raw.data() + pos + 6), len);
    pos += 6 + len;
    entries.push_back(std::move(e));
  }
  return entries;
}

Status Filesystem::WriteDirInode(std::uint32_t ino, const std::vector<DirEntry>& entries) {
  std::vector<std::uint8_t> raw;
  for (const DirEntry& e : entries) {
    const std::uint8_t len = static_cast<std::uint8_t>(e.name.size());
    std::uint8_t header[6];
    std::memcpy(header, &e.inode, 4);
    header[4] = static_cast<std::uint8_t>(e.type);
    header[5] = len;
    raw.insert(raw.end(), header, header + 6);
    raw.insert(raw.end(), e.name.begin(), e.name.end());
  }
  // Directory rewrites must land atomically even when the caller (WriteFile)
  // has opted its own data loop into transaction splitting.
  const bool saved_split = txn_allow_split_;
  txn_allow_split_ = false;
  Status st = TruncateLocked(ino, 0);
  if (st.ok() && !raw.empty()) {
    st = WriteLocked(ino, 0, raw);
  }
  txn_allow_split_ = saved_split;
  return st;
}

Result<Filesystem::Resolved> Filesystem::ResolvePath(std::string_view path) {
  COMPSTOR_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));

  Resolved r;
  r.parent = 0;
  r.inode = 0;  // root
  r.type = FileType::kDir;
  if (parts.empty()) {
    r.leaf = "";
    return r;
  }

  std::uint32_t dir = 0;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    COMPSTOR_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, ReadDirInode(dir));
    const DirEntry* hit = nullptr;
    for (const DirEntry& e : entries) {
      if (e.name == parts[i]) {
        hit = &e;
        break;
      }
    }
    if (hit == nullptr) return NotFound("path component missing: " + parts[i]);
    if (hit->type != FileType::kDir) {
      return FailedPrecondition("path component is a file: " + parts[i]);
    }
    dir = hit->inode;
  }

  r.parent = dir;
  r.leaf = parts.back();
  r.inode = kNoInode;
  COMPSTOR_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, ReadDirInode(dir));
  for (const DirEntry& e : entries) {
    if (e.name == r.leaf) {
      r.inode = e.inode;
      r.type = e.type;
      break;
    }
  }
  return r;
}

Result<FileStat> Filesystem::Stat(std::string_view path) {
  std::lock_guard<std::mutex> guard(*lock_);
  COMPSTOR_ASSIGN_OR_RETURN(Resolved r, ResolvePath(path));
  if (r.leaf.empty()) return FileStat{0, FileType::kDir, 0};  // root
  if (r.inode == kNoInode) return NotFound(std::string(path));
  Superblock sb;
  COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
  Inode node;
  COMPSTOR_RETURN_IF_ERROR(LoadInode(sb, r.inode, &node));
  return FileStat{r.inode, node.type(), node.size};
}

Result<std::uint32_t> Filesystem::Lookup(std::string_view path) {
  std::lock_guard<std::mutex> guard(*lock_);
  COMPSTOR_ASSIGN_OR_RETURN(Resolved r, ResolvePath(path));
  if (r.leaf.empty()) return std::uint32_t{0};
  if (r.inode == kNoInode) return NotFound(std::string(path));
  return r.inode;
}

Result<std::uint32_t> Filesystem::Create(std::string_view path) {
  std::lock_guard<std::mutex> guard(*lock_);
  COMPSTOR_RETURN_IF_ERROR(BeginTxn());
  Result<std::uint32_t> r = CreateLocked(path);
  COMPSTOR_RETURN_IF_ERROR(FinishTxn(r.status()));
  return r;
}

Result<std::uint32_t> Filesystem::CreateLocked(std::string_view path) {
  COMPSTOR_ASSIGN_OR_RETURN(Resolved r, ResolvePath(path));
  if (r.leaf.empty()) return InvalidArgument("cannot create root");
  if (r.inode != kNoInode) return AlreadyExists(std::string(path));
  Superblock sb;
  COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
  COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t ino, AllocInode(sb, FileType::kFile));
  COMPSTOR_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, ReadDirInode(r.parent));
  entries.push_back(DirEntry{r.leaf, ino, FileType::kFile});
  COMPSTOR_RETURN_IF_ERROR(WriteDirInode(r.parent, entries));
  return ino;
}

Status Filesystem::Mkdir(std::string_view path) {
  std::lock_guard<std::mutex> guard(*lock_);
  COMPSTOR_RETURN_IF_ERROR(BeginTxn());
  Status st = [&]() -> Status {
    COMPSTOR_ASSIGN_OR_RETURN(Resolved r, ResolvePath(path));
    if (r.leaf.empty()) return InvalidArgument("cannot create root");
    if (r.inode != kNoInode) return AlreadyExists(std::string(path));
    Superblock sb;
    COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
    COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t ino, AllocInode(sb, FileType::kDir));
    COMPSTOR_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, ReadDirInode(r.parent));
    entries.push_back(DirEntry{r.leaf, ino, FileType::kDir});
    return WriteDirInode(r.parent, entries);
  }();
  return FinishTxn(st);
}

Status Filesystem::Unlink(std::string_view path) {
  std::lock_guard<std::mutex> guard(*lock_);
  COMPSTOR_RETURN_IF_ERROR(BeginTxn());
  return FinishTxn(UnlinkLocked(path));
}

Status Filesystem::UnlinkLocked(std::string_view path) {
  COMPSTOR_ASSIGN_OR_RETURN(Resolved r, ResolvePath(path));
  if (r.leaf.empty() || r.inode == kNoInode) return NotFound(std::string(path));
  if (r.type == FileType::kDir) return FailedPrecondition("is a directory");

  COMPSTOR_RETURN_IF_ERROR(TruncateLocked(r.inode, 0));
  Superblock sb;
  COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
  Inode freed;  // mode 0
  COMPSTOR_RETURN_IF_ERROR(StoreInode(sb, r.inode, freed));

  COMPSTOR_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, ReadDirInode(r.parent));
  std::erase_if(entries, [&](const DirEntry& e) { return e.name == r.leaf; });
  return WriteDirInode(r.parent, entries);
}

Status Filesystem::Rmdir(std::string_view path) {
  std::lock_guard<std::mutex> guard(*lock_);
  COMPSTOR_RETURN_IF_ERROR(BeginTxn());
  Status st = [&]() -> Status {
    COMPSTOR_ASSIGN_OR_RETURN(Resolved r, ResolvePath(path));
    if (r.leaf.empty()) return InvalidArgument("cannot remove root");
    if (r.inode == kNoInode) return NotFound(std::string(path));
    if (r.type != FileType::kDir) return FailedPrecondition("not a directory");
    COMPSTOR_ASSIGN_OR_RETURN(std::vector<DirEntry> children, ReadDirInode(r.inode));
    if (!children.empty()) return FailedPrecondition("directory not empty");

    COMPSTOR_RETURN_IF_ERROR(TruncateLocked(r.inode, 0));
    Superblock sb;
    COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
    Inode freed;
    COMPSTOR_RETURN_IF_ERROR(StoreInode(sb, r.inode, freed));

    COMPSTOR_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, ReadDirInode(r.parent));
    std::erase_if(entries, [&](const DirEntry& e) { return e.name == r.leaf; });
    return WriteDirInode(r.parent, entries);
  }();
  return FinishTxn(st);
}

Status Filesystem::Rename(std::string_view from, std::string_view to) {
  std::lock_guard<std::mutex> guard(*lock_);
  // One transaction: the entry leaves the source directory and lands in the
  // destination atomically — the torture test's rename-into-place pattern
  // relies on a crash never showing zero or two links to the inode.
  COMPSTOR_RETURN_IF_ERROR(BeginTxn());
  Status st = [&]() -> Status {
    COMPSTOR_ASSIGN_OR_RETURN(Resolved src, ResolvePath(from));
    if (src.leaf.empty() || src.inode == kNoInode) return NotFound(std::string(from));
    COMPSTOR_ASSIGN_OR_RETURN(Resolved dst, ResolvePath(to));
    if (dst.leaf.empty()) return InvalidArgument("cannot rename to root");
    if (dst.inode != kNoInode) return AlreadyExists(std::string(to));

    COMPSTOR_ASSIGN_OR_RETURN(std::vector<DirEntry> src_entries, ReadDirInode(src.parent));
    std::erase_if(src_entries, [&](const DirEntry& e) { return e.name == src.leaf; });
    COMPSTOR_RETURN_IF_ERROR(WriteDirInode(src.parent, src_entries));

    COMPSTOR_ASSIGN_OR_RETURN(std::vector<DirEntry> dst_entries, ReadDirInode(dst.parent));
    dst_entries.push_back(DirEntry{dst.leaf, src.inode, src.type});
    return WriteDirInode(dst.parent, dst_entries);
  }();
  return FinishTxn(st);
}

Result<std::vector<DirEntry>> Filesystem::ReadDir(std::string_view path) {
  std::lock_guard<std::mutex> guard(*lock_);
  COMPSTOR_ASSIGN_OR_RETURN(Resolved r, ResolvePath(path));
  std::uint32_t dir_ino;
  if (r.leaf.empty()) {
    dir_ino = 0;
  } else if (r.inode == kNoInode) {
    return NotFound(std::string(path));
  } else if (r.type != FileType::kDir) {
    return FailedPrecondition("not a directory");
  } else {
    dir_ino = r.inode;
  }
  return ReadDirInode(dir_ino);
}

// ---------------------------------------------------------------------------
// Whole-file convenience
// ---------------------------------------------------------------------------

Status Filesystem::WriteFile(std::string_view path, std::span<const std::uint8_t> data) {
  std::lock_guard<std::mutex> guard(*lock_);
  // Two transactions: truncate-or-create lands atomically, then the data
  // lands in (possibly split) installments whose final StoreInode stamps the
  // size. A crash mid-way shows the old file, an empty file, or the full new
  // content — never a torn mix.
  COMPSTOR_RETURN_IF_ERROR(BeginTxn());
  std::uint32_t ino = kNoInode;
  Status st = [&]() -> Status {
    COMPSTOR_ASSIGN_OR_RETURN(Resolved r, ResolvePath(path));
    if (r.inode != kNoInode) {
      if (r.type == FileType::kDir) return FailedPrecondition("is a directory");
      ino = r.inode;
      return TruncateLocked(ino, 0);
    }
    COMPSTOR_ASSIGN_OR_RETURN(ino, CreateLocked(path));
    return OkStatus();
  }();
  COMPSTOR_RETURN_IF_ERROR(FinishTxn(st));
  if (data.empty()) return OkStatus();

  COMPSTOR_RETURN_IF_ERROR(BeginTxn());
  txn_allow_split_ = true;
  st = WriteLocked(ino, 0, data);
  txn_allow_split_ = false;
  return FinishTxn(st);
}

Status Filesystem::WriteFile(std::string_view path, std::string_view text) {
  return WriteFile(path, std::span<const std::uint8_t>(
                             reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

Result<std::vector<std::uint8_t>> Filesystem::ReadFileAll(std::string_view path) {
  std::lock_guard<std::mutex> guard(*lock_);
  COMPSTOR_ASSIGN_OR_RETURN(Resolved r, ResolvePath(path));
  if (r.leaf.empty() || r.inode == kNoInode) return NotFound(std::string(path));
  if (r.type == FileType::kDir) return FailedPrecondition("is a directory");
  Superblock sb;
  COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
  Inode node;
  COMPSTOR_RETURN_IF_ERROR(LoadInode(sb, r.inode, &node));
  std::vector<std::uint8_t> data(node.size);
  COMPSTOR_ASSIGN_OR_RETURN(std::uint64_t n, ReadLocked(r.inode, 0, data));
  data.resize(n);
  return data;
}

Result<std::string> Filesystem::ReadFileText(std::string_view path) {
  COMPSTOR_ASSIGN_OR_RETURN(std::vector<std::uint8_t> data, ReadFileAll(path));
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

// ---------------------------------------------------------------------------
// Extent-granular streaming
// ---------------------------------------------------------------------------

namespace {

/// Sequential chunked reader over an inode. Each chunk fetch is one locked
/// filesystem read (one device round trip on the owning path); with prefetch
/// the following chunk's read runs on a detached reader thread while the
/// caller consumes the current one — that thread's flash reads go through
/// the same internal NVMe ring as any other access to this Filesystem view.
class FileSource final : public fs::ByteSource {
 public:
  FileSource(Filesystem* filesystem, std::uint32_t inode, std::uint64_t size,
             const StreamOptions& options, MemoryReservation reservation)
      : fs_(filesystem), inode_(inode), size_(size), options_(options),
        reservation_(std::move(reservation)) {}

  ~FileSource() override {
    if (pending_.valid()) pending_.wait();
  }

  Result<std::size_t> Read(std::span<std::uint8_t> out) override {
    if (out.empty()) return std::size_t{0};
    if (pos_ >= chunk_.size()) {
      if (eof_) return std::size_t{0};
      COMPSTOR_RETURN_IF_ERROR(Refill());
      if (chunk_.empty()) return std::size_t{0};
    }
    const std::size_t n = std::min(out.size(), chunk_.size() - pos_);
    std::memcpy(out.data(), chunk_.data() + pos_, n);
    pos_ += n;
    return n;
  }

  std::uint64_t SizeHint() const override {
    return size_ > offset_ ? size_ - offset_ : 0;
  }

 private:
  Result<std::vector<std::uint8_t>> FetchAt(std::uint64_t offset) {
    const std::uint64_t want =
        std::min<std::uint64_t>(options_.chunk_bytes, size_ - offset);
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(want));
    if (want > 0) {
      COMPSTOR_ASSIGN_OR_RETURN(std::uint64_t n, fs_->Read(inode_, offset, buf));
      buf.resize(static_cast<std::size_t>(n));
    }
    return buf;
  }

  Status Refill() {
    Result<std::vector<std::uint8_t>> next =
        pending_.valid() ? pending_.get() : FetchAt(offset_);
    if (!next.ok()) {
      eof_ = true;
      return next.status();
    }
    chunk_ = std::move(*next);
    pos_ = 0;
    offset_ += chunk_.size();
    if (chunk_.size() < options_.chunk_bytes || offset_ >= size_) {
      eof_ = true;
    } else if (options_.prefetch) {
      // Read-ahead: the next chunk's flash read overlaps the caller's
      // compute on the current one. The reader thread inherits the caller's
      // trace context so the prefetched flash IO stays attributed to the
      // owning query.
      pending_ = std::async(std::launch::async,
                            [this, off = offset_,
                             ctx = telemetry::CurrentTraceContext()] {
                              telemetry::ScopedTraceContext tracing(ctx);
                              return FetchAt(off);
                            });
    }
    if (!chunk_.empty() && options_.on_chunk) options_.on_chunk(chunk_.size());
    return OkStatus();
  }

  Filesystem* fs_;
  const std::uint32_t inode_;
  const std::uint64_t size_;  // size at open; concurrent growth is not followed
  StreamOptions options_;
  MemoryReservation reservation_;
  std::future<Result<std::vector<std::uint8_t>>> pending_;
  std::vector<std::uint8_t> chunk_;
  std::size_t pos_ = 0;
  std::uint64_t offset_ = 0;
  bool eof_ = false;
};

/// Chunk-buffered sequential writer; flushes one chunk per device round trip.
class FileSink final : public fs::ByteSink {
 public:
  FileSink(Filesystem* filesystem, std::uint32_t inode, const StreamOptions& options,
           MemoryReservation reservation)
      : fs_(filesystem), inode_(inode), options_(options),
        reservation_(std::move(reservation)) {
    buf_.reserve(options_.chunk_bytes);
  }

  Status Write(std::span<const std::uint8_t> data) override {
    if (closed_) return FailedPrecondition("stream: write after close");
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t n =
          std::min(data.size() - off, options_.chunk_bytes - buf_.size());
      buf_.insert(buf_.end(), data.begin() + static_cast<std::ptrdiff_t>(off),
                  data.begin() + static_cast<std::ptrdiff_t>(off + n));
      off += n;
      if (buf_.size() == options_.chunk_bytes) COMPSTOR_RETURN_IF_ERROR(Flush());
    }
    return OkStatus();
  }

  Status Close() override {
    if (closed_) return OkStatus();
    closed_ = true;
    return Flush();
  }

 private:
  Status Flush() {
    if (buf_.empty()) return OkStatus();
    COMPSTOR_RETURN_IF_ERROR(fs_->Write(inode_, offset_, buf_));
    offset_ += buf_.size();
    if (options_.on_chunk) options_.on_chunk(buf_.size());
    buf_.clear();
    return OkStatus();
  }

  Filesystem* fs_;
  const std::uint32_t inode_;
  StreamOptions options_;
  MemoryReservation reservation_;
  std::vector<std::uint8_t> buf_;
  std::uint64_t offset_ = 0;
  bool closed_ = false;
};

StreamOptions SanitizedOptions(const StreamOptions& options) {
  StreamOptions o = options;
  if (o.chunk_bytes == 0) o.chunk_bytes = kDefaultChunkBytes;
  return o;
}

}  // namespace

Result<std::unique_ptr<ByteSource>> Filesystem::OpenRead(std::string_view path,
                                                         const StreamOptions& options) {
  const StreamOptions o = SanitizedOptions(options);
  COMPSTOR_ASSIGN_OR_RETURN(FileStat st, Stat(path));
  if (st.type == FileType::kDir) return FailedPrecondition("is a directory");
  MemoryReservation reservation(o.budget);
  // One chunk resident, two while a prefetch is in flight.
  COMPSTOR_RETURN_IF_ERROR(
      reservation.Grow(static_cast<std::uint64_t>(o.chunk_bytes) * (o.prefetch ? 2 : 1)));
  return std::unique_ptr<ByteSource>(
      new FileSource(this, st.inode, st.size, o, std::move(reservation)));
}

Result<std::unique_ptr<ByteSink>> Filesystem::OpenWrite(std::string_view path,
                                                        const StreamOptions& options) {
  const StreamOptions o = SanitizedOptions(options);
  std::uint32_t ino = kNoInode;
  {
    std::lock_guard<std::mutex> guard(*lock_);
    COMPSTOR_RETURN_IF_ERROR(BeginTxn());
    Status st = [&]() -> Status {
      COMPSTOR_ASSIGN_OR_RETURN(Resolved r, ResolvePath(path));
      if (r.inode != kNoInode) {
        if (r.type == FileType::kDir) return FailedPrecondition("is a directory");
        ino = r.inode;
        return TruncateLocked(ino, 0);
      }
      COMPSTOR_ASSIGN_OR_RETURN(ino, CreateLocked(path));
      return OkStatus();
    }();
    COMPSTOR_RETURN_IF_ERROR(FinishTxn(st));
  }
  MemoryReservation reservation(o.budget);
  COMPSTOR_RETURN_IF_ERROR(reservation.Grow(o.chunk_bytes));
  return std::unique_ptr<ByteSink>(new FileSink(this, ino, o, std::move(reservation)));
}

Result<FsInfo> Filesystem::Info() {
  std::lock_guard<std::mutex> guard(*lock_);
  Superblock sb;
  COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
  FsInfo info;
  info.total_blocks = sb.total_blocks;
  info.total_inodes = sb.inode_count;
  info.block_size = sb.block_size;

  std::vector<std::uint8_t> block(sb.block_size);
  std::uint64_t used = 0;
  for (std::uint64_t b = 0; b < sb.bitmap_blocks; ++b) {
    COMPSTOR_RETURN_IF_ERROR(ReadBlock(sb.bitmap_start + b, block));
    for (std::uint8_t byte : block) used += static_cast<unsigned>(std::popcount(byte));
  }
  info.free_blocks = sb.total_blocks > used ? sb.total_blocks - used : 0;

  std::uint32_t free_inodes = 0;
  const std::uint32_t per_block = sb.block_size / kInodeBytes;
  for (std::uint64_t b = 0; b < sb.inode_table_blocks; ++b) {
    COMPSTOR_RETURN_IF_ERROR(ReadBlock(sb.inode_table_start + b, block));
    for (std::uint32_t i = 0; i < per_block; ++i) {
      const std::uint32_t ino = static_cast<std::uint32_t>(b * per_block + i);
      if (ino >= sb.inode_count) break;
      Inode node;
      std::memcpy(&node, block.data() + static_cast<std::size_t>(i) * kInodeBytes, sizeof(node));
      if (node.mode == 0) ++free_inodes;
    }
  }
  info.free_inodes = free_inodes;
  return info;
}

// ---------------------------------------------------------------------------
// Integrity / scrub support
// ---------------------------------------------------------------------------

Result<std::vector<std::uint64_t>> Filesystem::UsedBlocks() {
  std::lock_guard<std::mutex> guard(*lock_);
  Superblock sb;
  COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
  std::vector<std::uint64_t> used;
  std::vector<std::uint8_t> block(sb.block_size);
  for (std::uint64_t b = 0; b < sb.bitmap_blocks; ++b) {
    COMPSTOR_RETURN_IF_ERROR(ReadBlock(sb.bitmap_start + b, block));
    const std::uint64_t first = b * static_cast<std::uint64_t>(sb.block_size) * 8;
    for (std::uint64_t bit = 0; bit < static_cast<std::uint64_t>(sb.block_size) * 8; ++bit) {
      const std::uint64_t lba = first + bit;
      if (lba >= sb.total_blocks) break;
      if (block[bit / 8] & (1u << (bit % 8))) used.push_back(lba);
    }
  }
  return used;
}

Result<std::vector<std::uint32_t>> Filesystem::LiveInodes() {
  std::lock_guard<std::mutex> guard(*lock_);
  Superblock sb;
  COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
  std::vector<std::uint32_t> live;
  std::vector<std::uint8_t> block(sb.block_size);
  const std::uint32_t per_block = sb.block_size / kInodeBytes;
  for (std::uint64_t b = 0; b < sb.inode_table_blocks; ++b) {
    COMPSTOR_RETURN_IF_ERROR(ReadBlock(sb.inode_table_start + b, block));
    for (std::uint32_t i = 0; i < per_block; ++i) {
      const std::uint32_t ino = static_cast<std::uint32_t>(b * per_block + i);
      if (ino >= sb.inode_count) break;
      Inode node;
      std::memcpy(&node, block.data() + static_cast<std::size_t>(i) * kInodeBytes, sizeof(node));
      if (node.mode != 0) live.push_back(ino);
    }
  }
  return live;
}

Result<std::vector<std::uint64_t>> Filesystem::InodeExtents(std::uint32_t ino) {
  std::lock_guard<std::mutex> guard(*lock_);
  Superblock sb;
  COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
  Inode node;
  COMPSTOR_RETURN_IF_ERROR(LoadInode(sb, ino, &node));
  if (node.mode == 0) return NotFound("inode is free");

  std::vector<std::uint64_t> extents;
  const std::uint64_t nblocks = CeilDiv(node.size, sb.block_size);
  for (std::uint64_t fbi = 0; fbi < nblocks; ++fbi) {
    COMPSTOR_ASSIGN_OR_RETURN(std::uint64_t lba,
                              MapBlock(sb, &node, ino, fbi, /*allocate=*/false));
    if (lba != 0) extents.push_back(lba);
  }
  // Pointer blocks are data-area blocks too; include them so the scrubber's
  // verify stage covers the mapping metadata, not just file payload.
  if (node.indirect != 0) extents.push_back(node.indirect);
  if (node.dindirect != 0) {
    extents.push_back(node.dindirect);
    std::vector<std::uint8_t> raw(sb.block_size);
    COMPSTOR_RETURN_IF_ERROR(ReadBlock(node.dindirect, raw));
    std::vector<std::uint64_t> outer(sb.PtrsPerBlock());
    std::memcpy(outer.data(), raw.data(), sb.block_size);
    for (std::uint64_t ptr : outer) {
      if (ptr != 0) extents.push_back(ptr);
    }
  }
  return extents;
}

Status Filesystem::VerifyBlock(std::uint64_t lba) {
  std::lock_guard<std::mutex> guard(*lock_);
  Superblock sb;
  COMPSTOR_RETURN_IF_ERROR(LoadSuper(&sb));
  if (lba >= sb.total_blocks) return OutOfRange("block out of range");
  std::vector<std::uint8_t> block(sb.block_size);
  return ReadBlock(lba, block);
}

FsIntegrityCounts Filesystem::IntegrityCounts() const {
  FsIntegrityCounts c;
  c.journal_commits = journal_commits_.load(std::memory_order_relaxed);
  c.journal_replays = journal_replays_.load(std::memory_order_relaxed);
  c.journal_replayed_blocks = journal_replayed_blocks_.load(std::memory_order_relaxed);
  c.txn_aborts = txn_aborts_.load(std::memory_order_relaxed);
  c.cksum_checks = cksum_checks_.load(std::memory_order_relaxed);
  c.cksum_failures = cksum_failures_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace compstor::fs
