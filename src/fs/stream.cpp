#include "fs/stream.hpp"

#include <algorithm>
#include <cstring>

namespace compstor::fs {

Result<std::size_t> MemorySource::Read(std::span<std::uint8_t> out) {
  if (pos_ >= data_.size() || out.empty()) return std::size_t{0};
  const std::size_t chunk = options_.chunk_bytes == 0 ? out.size() : options_.chunk_bytes;
  const std::size_t n = std::min({out.size(), chunk, data_.size() - pos_});
  std::memcpy(out.data(), data_.data() + pos_, n);
  pos_ += n;
  if (options_.on_chunk) options_.on_chunk(n);
  return n;
}

Result<bool> LineReader::Next(std::string* line) {
  line->clear();
  for (;;) {
    const std::size_t nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      line->append(buf_, pos_, nl - pos_);
      pos_ = nl + 1;
      return true;
    }
    // No newline buffered: keep the tail, pull the next chunk.
    line->append(buf_, pos_, buf_.size() - pos_);
    buf_.clear();
    pos_ = 0;
    if (eof_) return !line->empty();
    buf_.resize(chunk_bytes_);
    COMPSTOR_ASSIGN_OR_RETURN(
        std::size_t n,
        source_->Read(std::span<std::uint8_t>(
            reinterpret_cast<std::uint8_t*>(buf_.data()), buf_.size())));
    buf_.resize(n);
    if (n == 0) eof_ = true;
  }
}

PipeRing::PipeRing(std::size_t capacity_bytes, MemoryBudget* budget)
    : capacity_(std::max<std::size_t>(capacity_bytes, 1)), reservation_(budget) {
  // The ring is the pipeline's entire inter-stage footprint; reserve it up
  // front. A budget too small for even one ring surfaces at first write.
  (void)reservation_.Grow(capacity_);
  ring_.resize(capacity_);
}

PipeRing::~PipeRing() {
  CloseWrite();
  CloseRead();
}

Status PipeRing::Write(std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (read_closed_) {
      // Downstream exited early: swallow the rest so the producer finishes.
      total_ += data.size() - off;
      return OkStatus();
    }
    if (write_closed_) return FailedPrecondition("pipe: write after close");
    writable_.wait(lock, [&] { return size_ < capacity_ || read_closed_; });
    if (read_closed_) continue;  // re-checks and discards above
    const std::size_t n = std::min(data.size() - off, capacity_ - size_);
    std::size_t tail = (head_ + size_) % capacity_;
    for (std::size_t i = 0; i < n; ++i) {
      ring_[tail] = data[off + i];
      tail = tail + 1 == capacity_ ? 0 : tail + 1;
    }
    size_ += n;
    total_ += n;
    off += n;
    readable_.notify_one();
  }
  return OkStatus();
}

std::size_t PipeRing::Read(std::span<std::uint8_t> out) {
  if (out.empty()) return 0;
  std::unique_lock<std::mutex> lock(mutex_);
  readable_.wait(lock, [&] { return size_ > 0 || write_closed_; });
  const std::size_t n = std::min(out.size(), size_);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = ring_[head_];
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  }
  size_ -= n;
  if (n > 0) writable_.notify_one();
  return n;
}

void PipeRing::CloseWrite() {
  std::lock_guard<std::mutex> lock(mutex_);
  write_closed_ = true;
  readable_.notify_all();
}

void PipeRing::CloseRead() {
  std::lock_guard<std::mutex> lock(mutex_);
  read_closed_ = true;
  size_ = 0;  // drop buffered bytes nobody will read
  writable_.notify_all();
}

std::uint64_t PipeRing::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

Result<std::size_t> RingSource::Read(std::span<std::uint8_t> out) {
  const std::size_t n = ring_->Read(out);
  if (n > 0 && on_chunk_) on_chunk_(n);
  return n;
}

Result<std::uint64_t> CopyStream(ByteSource& source, ByteSink& sink,
                                 std::size_t chunk_bytes) {
  std::vector<std::uint8_t> buf(std::max<std::size_t>(chunk_bytes, 1));
  std::uint64_t moved = 0;
  for (;;) {
    COMPSTOR_ASSIGN_OR_RETURN(std::size_t n, source.Read(buf));
    if (n == 0) return moved;
    COMPSTOR_RETURN_IF_ERROR(sink.Write(std::span<const std::uint8_t>(buf.data(), n)));
    moved += n;
  }
}

Result<std::string> DrainToString(ByteSource& source, MemoryReservation* reservation,
                                  std::size_t chunk_bytes) {
  std::string out;
  std::vector<std::uint8_t> buf(std::max<std::size_t>(chunk_bytes, 1));
  for (;;) {
    COMPSTOR_ASSIGN_OR_RETURN(std::size_t n, source.Read(buf));
    if (n == 0) return out;
    if (reservation != nullptr) COMPSTOR_RETURN_IF_ERROR(reservation->Grow(n));
    out.append(reinterpret_cast<const char*>(buf.data()), n);
  }
}

}  // namespace compstor::fs
