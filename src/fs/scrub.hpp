// Background scrubber: walks the filesystem's allocated blocks, refreshes
// them through the device's media-scrub verb, and audits extent checksums.
//
// Each pass has two stages:
//   1. media stage — every bitmap-allocated block is pushed through
//      BlockDevice::Scrub (FTL read + ECC decode + rewrite-if-correctable);
//      a block the codec cannot repair comes back kDataLoss, its mapping is
//      dropped and the flash block retires through the FTL's deferred
//      bad-block machinery.
//   2. verify stage — every live inode's extents (payload and pointer
//      blocks) are re-read through the filesystem's checksummed read path,
//      so bit rot the page codec missed still surfaces as kDataCorruption
//      before any query consumes it.
//
// The scrubber never holds the filesystem lock across device IO in the media
// stage, and the verify stage takes it one block at a time — foreground
// reads and in-situ tasks keep running while a pass is in flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.hpp"
#include "fs/filesystem.hpp"
#include "ssd/block_device.hpp"
#include "telemetry/trace.hpp"

namespace compstor::fs {

/// Cumulative scrubber counters (monotonic across passes; readable without
/// the filesystem lock — the `scrub.*` kStats probes sample these).
struct ScrubStats {
  std::uint64_t passes = 0;
  std::uint64_t media_blocks = 0;      // blocks pushed through media refresh
  std::uint64_t media_retired = 0;     // uncorrectable: mapping dropped, block retired
  std::uint64_t verify_blocks = 0;     // extents re-read through checksum verify
  std::uint64_t verify_failures = 0;   // checksum mismatches found
};

class Scrubber {
 public:
  /// `dev` must be the same device view `fs` is mounted on (the internal
  /// view — only it implements the media-scrub verb).
  Scrubber(Filesystem* fs, ssd::BlockDevice* dev);

  /// Optional tracing: a pass records one "scrub"/"pass" span stamped from
  /// `now_s` (virtual seconds) on the given ring.
  void AttachTrace(telemetry::TraceRing* trace, std::function<double()> now_s);

  /// One full pass (media stage, then verify stage). Returns kDataCorruption
  /// if the verify stage found mismatched extents (their count lands in
  /// stats); transport errors (device unavailable) abort the pass and
  /// propagate. Uncorrectable-but-retired media blocks do NOT fail the pass:
  /// the damage is contained and counted in `media_retired`.
  Status RunPass();

  ScrubStats Stats() const;

  /// True while a pass is in flight (the `scrub.active` gauge; health rules
  /// pair it with the progress counters to catch a stalled pass).
  bool active() const { return active_.load(std::memory_order_relaxed); }

 private:
  Filesystem* fs_;
  ssd::BlockDevice* dev_;
  telemetry::TraceRing* trace_ = nullptr;
  std::function<double()> now_s_;

  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> passes_{0};
  std::atomic<std::uint64_t> media_blocks_{0};
  std::atomic<std::uint64_t> media_retired_{0};
  std::atomic<std::uint64_t> verify_blocks_{0};
  std::atomic<std::uint64_t> verify_failures_{0};
};

}  // namespace compstor::fs
