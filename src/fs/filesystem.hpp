// CompStorFS: a compact inode/extent filesystem over a BlockDevice.
//
// This is the role the embedded Linux filesystem plays in the paper: the
// host loads input files onto the SSD through the NVMe path, and offloaded
// executables open the same files through the ISPS-internal path — "the
// off-loadable executable sees the flash memory as if it were running on the
// host CPU" (§III.B).
//
// Design:
//  - block size == device block size (4096);
//  - fixed inode table after the superblock; 256-byte inodes with 12 direct,
//    one single-indirect and one double-indirect u64 block pointer
//    (max file size ~1 GiB at 4 KiB blocks);
//  - a block bitmap; hierarchical directories stored as packed entry files;
//  - write-through and cache-free: every operation reads metadata from the
//    device, so several Filesystem instances over different views of the
//    same SSD stay coherent as long as they share the SSD's fs mutex;
//  - crash consistency: every mutating operation runs as a transaction whose
//    block updates are staged in memory, written to an on-device redo
//    journal (CRC32c-framed descriptor + payloads + commit record), and only
//    then checkpointed to their home locations. Mount() replays the last
//    committed transaction, so a power cut at any flash-op index yields the
//    old or the new filesystem state, never a torn one;
//  - end-to-end integrity: a per-block CRC32c table covers the data area.
//    Checksums are stored at write time and verified on every read, so a
//    silently corrupted extent surfaces as kDataCorruption instead of
//    feeding garbage to in-situ compute.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "fs/stream.hpp"
#include "ssd/block_device.hpp"

namespace compstor::fs {

enum class FileType : std::uint8_t { kFile = 1, kDir = 2 };

struct FormatOptions {
  std::uint32_t inode_count = 1024;
};

struct FileStat {
  std::uint32_t inode = 0;
  FileType type = FileType::kFile;
  std::uint64_t size = 0;
};

struct DirEntry {
  std::string name;
  std::uint32_t inode = 0;
  FileType type = FileType::kFile;
};

struct FsInfo {
  std::uint64_t total_blocks = 0;
  std::uint64_t free_blocks = 0;
  std::uint32_t total_inodes = 0;
  std::uint32_t free_inodes = 0;
  std::uint32_t block_size = 0;
};

/// Snapshot of the journal / checksum machinery, for `journal.*` probes and
/// the crash-recovery tests.
struct FsIntegrityCounts {
  std::uint64_t journal_commits = 0;    // transactions committed
  std::uint64_t journal_replays = 0;    // mounts that redid a committed txn
  std::uint64_t journal_replayed_blocks = 0;
  std::uint64_t txn_aborts = 0;         // transactions rolled back in memory
  std::uint64_t cksum_checks = 0;       // data-area block reads verified
  std::uint64_t cksum_failures = 0;     // reads that failed verification
};

class Filesystem {
 public:
  /// `lock` must be shared by every Filesystem instance mounted over the
  /// same underlying SSD (host view and internal view).
  Filesystem(ssd::BlockDevice* dev, std::shared_ptr<std::mutex> lock);
  ~Filesystem();  // defined in the .cpp: Superblock is incomplete here

  /// Writes a fresh filesystem onto the device.
  static Status Format(ssd::BlockDevice* dev, const FormatOptions& options = {});

  /// Validates the superblock (typed errors: kFailedPrecondition for a
  /// missing filesystem, kUnimplemented for a version mismatch,
  /// kDataCorruption for a bad superblock CRC, kInvalidArgument for a block
  /// size that does not match the device) and replays the journal's last
  /// committed transaction. Must be called before any other operation.
  Status Mount();

  // --- namespace operations (absolute paths, '/'-separated) ---
  Result<FileStat> Stat(std::string_view path);
  Result<std::uint32_t> Create(std::string_view path);  // returns inode
  Status Mkdir(std::string_view path);
  Status Unlink(std::string_view path);    // files only
  Status Rmdir(std::string_view path);     // empty directories only
  Status Rename(std::string_view from, std::string_view to);
  Result<std::vector<DirEntry>> ReadDir(std::string_view path);
  Result<std::uint32_t> Lookup(std::string_view path);

  // --- file IO by inode ---
  /// Returns bytes read (short reads at EOF).
  Result<std::uint64_t> Read(std::uint32_t inode, std::uint64_t offset,
                             std::span<std::uint8_t> out);
  /// Extends the file as needed (sparse holes read back as zeros).
  Status Write(std::uint32_t inode, std::uint64_t offset,
               std::span<const std::uint8_t> data);
  Status Truncate(std::uint32_t inode, std::uint64_t new_size);
  Result<FileStat> StatInode(std::uint32_t inode);

  // --- whole-file convenience ---
  /// Create-or-replace `path` with `data`.
  Status WriteFile(std::string_view path, std::span<const std::uint8_t> data);
  Status WriteFile(std::string_view path, std::string_view text);
  Result<std::vector<std::uint8_t>> ReadFileAll(std::string_view path);
  Result<std::string> ReadFileText(std::string_view path);

  // --- extent-granular streaming ---
  /// Opens `path` for sequential chunked reading. Each chunk is one device
  /// round trip (flash/NVMe latency lands per chunk via options.on_chunk, not
  /// per whole file); with options.prefetch the next chunk's read is issued
  /// on a reader thread while the caller processes the current one.
  Result<std::unique_ptr<ByteSource>> OpenRead(std::string_view path,
                                               const StreamOptions& options = {});
  /// Create-or-truncate `path` and return a chunk-buffered sink; Close()
  /// flushes the tail. The file exists (possibly empty) once this returns.
  Result<std::unique_ptr<ByteSink>> OpenWrite(std::string_view path,
                                              const StreamOptions& options = {});

  Result<FsInfo> Info();

  // --- integrity / scrub support ---
  /// Every lba the bitmap marks in use (metadata blocks included). The
  /// scrubber feeds these to the device's media-refresh verb.
  Result<std::vector<std::uint64_t>> UsedBlocks();
  /// Inode numbers currently allocated (files and directories).
  Result<std::vector<std::uint32_t>> LiveInodes();
  /// The data-area lbas backing `ino`, mapping order (holes skipped). Also
  /// includes the file's indirect pointer blocks — they live in the data
  /// area and are checksummed like any extent.
  Result<std::vector<std::uint64_t>> InodeExtents(std::uint32_t ino);
  /// Reads one block with checksum verification; kDataCorruption on
  /// mismatch. The scrubber's verify stage and the torture test's full-tree
  /// audit are built on this.
  Status VerifyBlock(std::uint64_t lba);
  FsIntegrityCounts IntegrityCounts() const;

  std::uint32_t block_size() const { return dev_->block_size(); }

 private:
  struct Superblock;
  struct Inode;
  struct Txn;

  // Raw block helpers. With a transaction open, WriteBlock stages metadata
  // blocks in memory (journaled at commit) and writes freshly allocated data
  // blocks straight through; ReadBlock sees staged content first and
  // verifies the checksum of data-area blocks.
  Status ReadBlock(std::uint64_t lba, std::span<std::uint8_t> out);
  Status WriteBlock(std::uint64_t lba, std::span<const std::uint8_t> data);

  // Transaction lifecycle (fs lock held). Public mutating operations open
  // one transaction, run their locked core, and FinishTxn commits on success
  // or rolls back the staged state on failure.
  Status BeginTxn();
  Status CommitTxn();
  void AbortTxn();
  Status FinishTxn(Status op_status);
  /// Commits and reopens the transaction when the staged set nears journal
  /// capacity. Only file-data write loops opt in (txn_allow_split_): they
  /// alone are safe to land in installments — metadata operations must stay
  /// atomic, and their staged sets are small by construction.
  Status MaybeSplitTxn();
  /// Redoes the last committed journal transaction (raw device IO).
  Status ReplayJournal(const Superblock& sb);

  // Per-block checksum table (data area only; entry 0 = unchecked).
  Status LoadCksumEntry(const Superblock& sb, std::uint64_t lba, std::uint32_t* out);
  Status StoreCksumEntry(const Superblock& sb, std::uint64_t lba, std::uint32_t value);

  Status LoadSuper(Superblock* sb);
  Status LoadInode(const Superblock& sb, std::uint32_t ino, Inode* inode);
  Status StoreInode(const Superblock& sb, std::uint32_t ino, const Inode& inode);
  Result<std::uint32_t> AllocInode(const Superblock& sb, FileType type);

  /// `zero_fill` is skipped when the caller will overwrite the whole block
  /// immediately (saves one device write on bulk data).
  Result<std::uint64_t> AllocBlock(const Superblock& sb, bool zero_fill = true);
  Status FreeBlock(const Superblock& sb, std::uint64_t lba);

  /// Maps file-block-index -> device lba; 0 means hole. When `allocate` is
  /// true, holes (and missing indirect blocks) are allocated and persisted;
  /// `zero_new` controls zero-filling of a newly allocated DATA block.
  Result<std::uint64_t> MapBlock(const Superblock& sb, Inode* inode,
                                 std::uint32_t ino, std::uint64_t fbi, bool allocate,
                                 bool zero_new = true);
  Status FreeFileBlocks(const Superblock& sb, Inode* inode, std::uint64_t from_fbi);

  // Directory helpers. Entries are packed {u32 ino, u8 type, u8 len, name}.
  Result<std::vector<DirEntry>> ReadDirInode(std::uint32_t ino);
  Status WriteDirInode(std::uint32_t ino, const std::vector<DirEntry>& entries);
  struct Resolved {
    std::uint32_t parent;     // inode of the containing directory
    std::string leaf;         // final component
    std::uint32_t inode;      // resolved inode or kNoInode
    FileType type;
  };
  Result<Resolved> ResolvePath(std::string_view path);

  // Locked-core implementations (public wrappers take the mutex).
  Result<std::uint64_t> ReadLocked(std::uint32_t inode, std::uint64_t offset,
                                   std::span<std::uint8_t> out);
  Status WriteLocked(std::uint32_t inode, std::uint64_t offset,
                     std::span<const std::uint8_t> data);
  Status TruncateLocked(std::uint32_t inode, std::uint64_t new_size);
  Result<std::uint32_t> CreateLocked(std::string_view path);
  Status UnlinkLocked(std::string_view path);

  static constexpr std::uint32_t kNoInode = ~0u;

  ssd::BlockDevice* dev_;
  std::shared_ptr<std::mutex> lock_;
  bool mounted_ = false;

  // The superblock is immutable after Format, so it is safe to cache per
  // instance (shared-SSD coherence only concerns mutable metadata).
  std::unique_ptr<Superblock> cached_super_;

  // Allocation cursor: bitmap scans start here and wrap. Purely a hint —
  // the on-device bitmap stays the source of truth, so a stale cursor in
  // another instance mounted over the same SSD costs time, not correctness.
  std::uint64_t alloc_cursor_ = 0;

  // Open transaction (fs lock held while non-null). The commit sequence
  // number is re-read from the on-device descriptor every commit, so two
  // instances mounted over the same SSD never stamp stale sequences.
  std::unique_ptr<Txn> txn_;
  bool txn_allow_split_ = false;

  // Integrity counters; atomics because prefetch readers and the scrubber
  // observe them without the fs lock.
  std::atomic<std::uint64_t> journal_commits_{0};
  std::atomic<std::uint64_t> journal_replays_{0};
  std::atomic<std::uint64_t> journal_replayed_blocks_{0};
  std::atomic<std::uint64_t> txn_aborts_{0};
  std::atomic<std::uint64_t> cksum_checks_{0};
  std::atomic<std::uint64_t> cksum_failures_{0};
};

}  // namespace compstor::fs
