// CompStorFS: a compact inode/extent filesystem over a BlockDevice.
//
// This is the role the embedded Linux filesystem plays in the paper: the
// host loads input files onto the SSD through the NVMe path, and offloaded
// executables open the same files through the ISPS-internal path — "the
// off-loadable executable sees the flash memory as if it were running on the
// host CPU" (§III.B).
//
// Design:
//  - block size == device block size (4096);
//  - fixed inode table after the superblock; 256-byte inodes with 12 direct,
//    one single-indirect and one double-indirect u64 block pointer
//    (max file size ~1 GiB at 4 KiB blocks);
//  - a block bitmap; hierarchical directories stored as packed entry files;
//  - write-through and cache-free: every operation reads metadata from the
//    device, so several Filesystem instances over different views of the
//    same SSD stay coherent as long as they share the SSD's fs mutex.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "fs/stream.hpp"
#include "ssd/block_device.hpp"

namespace compstor::fs {

enum class FileType : std::uint8_t { kFile = 1, kDir = 2 };

struct FormatOptions {
  std::uint32_t inode_count = 1024;
};

struct FileStat {
  std::uint32_t inode = 0;
  FileType type = FileType::kFile;
  std::uint64_t size = 0;
};

struct DirEntry {
  std::string name;
  std::uint32_t inode = 0;
  FileType type = FileType::kFile;
};

struct FsInfo {
  std::uint64_t total_blocks = 0;
  std::uint64_t free_blocks = 0;
  std::uint32_t total_inodes = 0;
  std::uint32_t free_inodes = 0;
  std::uint32_t block_size = 0;
};

class Filesystem {
 public:
  /// `lock` must be shared by every Filesystem instance mounted over the
  /// same underlying SSD (host view and internal view).
  Filesystem(ssd::BlockDevice* dev, std::shared_ptr<std::mutex> lock);
  ~Filesystem();  // defined in the .cpp: Superblock is incomplete here

  /// Writes a fresh filesystem onto the device.
  static Status Format(ssd::BlockDevice* dev, const FormatOptions& options = {});

  /// Validates the superblock. Must be called before any other operation.
  Status Mount();

  // --- namespace operations (absolute paths, '/'-separated) ---
  Result<FileStat> Stat(std::string_view path);
  Result<std::uint32_t> Create(std::string_view path);  // returns inode
  Status Mkdir(std::string_view path);
  Status Unlink(std::string_view path);    // files only
  Status Rmdir(std::string_view path);     // empty directories only
  Status Rename(std::string_view from, std::string_view to);
  Result<std::vector<DirEntry>> ReadDir(std::string_view path);
  Result<std::uint32_t> Lookup(std::string_view path);

  // --- file IO by inode ---
  /// Returns bytes read (short reads at EOF).
  Result<std::uint64_t> Read(std::uint32_t inode, std::uint64_t offset,
                             std::span<std::uint8_t> out);
  /// Extends the file as needed (sparse holes read back as zeros).
  Status Write(std::uint32_t inode, std::uint64_t offset,
               std::span<const std::uint8_t> data);
  Status Truncate(std::uint32_t inode, std::uint64_t new_size);
  Result<FileStat> StatInode(std::uint32_t inode);

  // --- whole-file convenience ---
  /// Create-or-replace `path` with `data`.
  Status WriteFile(std::string_view path, std::span<const std::uint8_t> data);
  Status WriteFile(std::string_view path, std::string_view text);
  Result<std::vector<std::uint8_t>> ReadFileAll(std::string_view path);
  Result<std::string> ReadFileText(std::string_view path);

  // --- extent-granular streaming ---
  /// Opens `path` for sequential chunked reading. Each chunk is one device
  /// round trip (flash/NVMe latency lands per chunk via options.on_chunk, not
  /// per whole file); with options.prefetch the next chunk's read is issued
  /// on a reader thread while the caller processes the current one.
  Result<std::unique_ptr<ByteSource>> OpenRead(std::string_view path,
                                               const StreamOptions& options = {});
  /// Create-or-truncate `path` and return a chunk-buffered sink; Close()
  /// flushes the tail. The file exists (possibly empty) once this returns.
  Result<std::unique_ptr<ByteSink>> OpenWrite(std::string_view path,
                                              const StreamOptions& options = {});

  Result<FsInfo> Info();

  std::uint32_t block_size() const { return dev_->block_size(); }

 private:
  struct Superblock;
  struct Inode;

  // Raw block helpers.
  Status ReadBlock(std::uint64_t lba, std::span<std::uint8_t> out);
  Status WriteBlock(std::uint64_t lba, std::span<const std::uint8_t> data);

  Status LoadSuper(Superblock* sb);
  Status LoadInode(const Superblock& sb, std::uint32_t ino, Inode* inode);
  Status StoreInode(const Superblock& sb, std::uint32_t ino, const Inode& inode);
  Result<std::uint32_t> AllocInode(const Superblock& sb, FileType type);

  /// `zero_fill` is skipped when the caller will overwrite the whole block
  /// immediately (saves one device write on bulk data).
  Result<std::uint64_t> AllocBlock(const Superblock& sb, bool zero_fill = true);
  Status FreeBlock(const Superblock& sb, std::uint64_t lba);

  /// Maps file-block-index -> device lba; 0 means hole. When `allocate` is
  /// true, holes (and missing indirect blocks) are allocated and persisted;
  /// `zero_new` controls zero-filling of a newly allocated DATA block.
  Result<std::uint64_t> MapBlock(const Superblock& sb, Inode* inode,
                                 std::uint32_t ino, std::uint64_t fbi, bool allocate,
                                 bool zero_new = true);
  Status FreeFileBlocks(const Superblock& sb, Inode* inode, std::uint64_t from_fbi);

  // Directory helpers. Entries are packed {u32 ino, u8 type, u8 len, name}.
  Result<std::vector<DirEntry>> ReadDirInode(std::uint32_t ino);
  Status WriteDirInode(std::uint32_t ino, const std::vector<DirEntry>& entries);
  struct Resolved {
    std::uint32_t parent;     // inode of the containing directory
    std::string leaf;         // final component
    std::uint32_t inode;      // resolved inode or kNoInode
    FileType type;
  };
  Result<Resolved> ResolvePath(std::string_view path);

  // Locked-core implementations (public wrappers take the mutex).
  Result<std::uint64_t> ReadLocked(std::uint32_t inode, std::uint64_t offset,
                                   std::span<std::uint8_t> out);
  Status WriteLocked(std::uint32_t inode, std::uint64_t offset,
                     std::span<const std::uint8_t> data);
  Status TruncateLocked(std::uint32_t inode, std::uint64_t new_size);
  Result<std::uint32_t> CreateLocked(std::string_view path);
  Status UnlinkLocked(std::string_view path);

  static constexpr std::uint32_t kNoInode = ~0u;

  ssd::BlockDevice* dev_;
  std::shared_ptr<std::mutex> lock_;
  bool mounted_ = false;

  // The superblock is immutable after Format, so it is safe to cache per
  // instance (shared-SSD coherence only concerns mutable metadata).
  std::unique_ptr<Superblock> cached_super_;

  // Allocation cursor: bitmap scans start here and wrap. Purely a hint —
  // the on-device bitmap stays the source of truth, so a stale cursor in
  // another instance mounted over the same SSD costs time, not correctness.
  std::uint64_t alloc_cursor_ = 0;
};

}  // namespace compstor::fs
