#include "proto/entities.hpp"

#include "util/byte_io.hpp"
#include "util/crc32c.hpp"

namespace compstor::proto {
namespace {

constexpr std::uint8_t kFrameMinion = 0x4D;      // 'M'
constexpr std::uint8_t kFrameQuery = 0x51;       // 'Q'
constexpr std::uint8_t kFrameQueryReply = 0x52;  // 'R'
// Version history:
//   v2: QueryReply gained per-queue-pair SQ depths and the kStats metrics
//       payload.
//   v3: distributed tracing — Command carries trace_query_id /
//       trace_parent_span, Response carries root_span_id. The new fields sit
//       at the end of their sections and are read only when the frame's
//       version byte says v3, so v2 frames (persisted traces, down-level
//       peers) still decode.
//   v4: multi-tenant QoS — Command carries tenant_id / priority, appended
//       after the trace fields under the same rule: v2/v3 frames decode with
//       the fields at their zero defaults (unattributed, interactive).
//   v5: in-storage KV — Command/Query carry a kv::Request batch and
//       Response/QueryReply a kv::Reply, all appended last; down-level
//       frames decode with empty payloads. QueryType::kKv itself is only
//       legal in v5+ frames (an older build could not express it anyway).
//   v6: observability — Query carries the stats/event cursors, QueryReply
//       the SeriesDelta + HealthEvent log of the kStatsDelta poll, and each
//       MetricValue its histogram underflow/overflow counters. Same rule:
//       appended last, read only at v6+; QueryType::kStatsDelta is rejected
//       in older frames.

void PutStringList(util::ByteWriter& w, const std::vector<std::string>& list) {
  w.PutU32(static_cast<std::uint32_t>(list.size()));
  for (const std::string& s : list) w.PutString(s);
}

Result<std::vector<std::string>> GetStringList(util::ByteReader& r) {
  COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t n, r.GetU32());
  std::vector<std::string> list;
  list.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    COMPSTOR_ASSIGN_OR_RETURN(std::string s, r.GetString());
    list.push_back(std::move(s));
  }
  return list;
}

void PutKvRequest(util::ByteWriter& w, const kv::Request& req) {
  w.PutString(req.dir);
  w.PutString(req.predicate_contains);
  w.PutU8(static_cast<std::uint8_t>(req.aggregate));
  w.PutU32(static_cast<std::uint32_t>(req.ops.size()));
  for (const kv::Op& op : req.ops) {
    w.PutU8(static_cast<std::uint8_t>(op.type));
    w.PutString(op.key);
    w.PutString(op.value);
    w.PutString(op.end_key);
    w.PutU32(op.limit);
  }
}

Result<kv::Request> GetKvRequest(util::ByteReader& r) {
  kv::Request req;
  COMPSTOR_ASSIGN_OR_RETURN(req.dir, r.GetString());
  COMPSTOR_ASSIGN_OR_RETURN(req.predicate_contains, r.GetString());
  COMPSTOR_ASSIGN_OR_RETURN(std::uint8_t agg, r.GetU8());
  if (agg > static_cast<std::uint8_t>(kv::Aggregate::kMax)) {
    return InvalidArgument("proto: bad kv aggregate");
  }
  req.aggregate = static_cast<kv::Aggregate>(agg);
  COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t n, r.GetU32());
  req.ops.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    kv::Op op;
    COMPSTOR_ASSIGN_OR_RETURN(std::uint8_t type, r.GetU8());
    if (type > static_cast<std::uint8_t>(kv::OpType::kScan)) {
      return InvalidArgument("proto: bad kv op type");
    }
    op.type = static_cast<kv::OpType>(type);
    COMPSTOR_ASSIGN_OR_RETURN(op.key, r.GetString());
    COMPSTOR_ASSIGN_OR_RETURN(op.value, r.GetString());
    COMPSTOR_ASSIGN_OR_RETURN(op.end_key, r.GetString());
    COMPSTOR_ASSIGN_OR_RETURN(op.limit, r.GetU32());
    req.ops.push_back(std::move(op));
  }
  return req;
}

void PutKvReply(util::ByteWriter& w, const kv::Reply& reply) {
  w.PutU64(reply.keys_read);
  w.PutU64(reply.keys_written);
  w.PutU64(reply.bytes_scanned);
  w.PutU64(reply.bytes_returned);
  w.PutU32(static_cast<std::uint32_t>(reply.results.size()));
  for (const kv::OpResult& res : reply.results) {
    w.PutU16(res.status_code);
    w.PutU8(res.found ? 1 : 0);
    w.PutString(res.value);
    w.PutU8(res.truncated ? 1 : 0);
    w.PutU64(res.scanned);
    w.PutU64(res.matched);
    w.PutI64(res.agg_value);
    w.PutU64(res.agg_skipped);
    w.PutU32(static_cast<std::uint32_t>(res.rows.size()));
    for (const auto& [key, value] : res.rows) {
      w.PutString(key);
      w.PutString(value);
    }
  }
}

Result<kv::Reply> GetKvReply(util::ByteReader& r) {
  kv::Reply reply;
  COMPSTOR_ASSIGN_OR_RETURN(reply.keys_read, r.GetU64());
  COMPSTOR_ASSIGN_OR_RETURN(reply.keys_written, r.GetU64());
  COMPSTOR_ASSIGN_OR_RETURN(reply.bytes_scanned, r.GetU64());
  COMPSTOR_ASSIGN_OR_RETURN(reply.bytes_returned, r.GetU64());
  COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t n, r.GetU32());
  reply.results.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    kv::OpResult res;
    COMPSTOR_ASSIGN_OR_RETURN(res.status_code, r.GetU16());
    COMPSTOR_ASSIGN_OR_RETURN(std::uint8_t found, r.GetU8());
    res.found = found != 0;
    COMPSTOR_ASSIGN_OR_RETURN(res.value, r.GetString());
    COMPSTOR_ASSIGN_OR_RETURN(std::uint8_t truncated, r.GetU8());
    res.truncated = truncated != 0;
    COMPSTOR_ASSIGN_OR_RETURN(res.scanned, r.GetU64());
    COMPSTOR_ASSIGN_OR_RETURN(res.matched, r.GetU64());
    COMPSTOR_ASSIGN_OR_RETURN(res.agg_value, r.GetI64());
    COMPSTOR_ASSIGN_OR_RETURN(res.agg_skipped, r.GetU64());
    COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t rows, r.GetU32());
    res.rows.reserve(rows);
    for (std::uint32_t j = 0; j < rows; ++j) {
      COMPSTOR_ASSIGN_OR_RETURN(std::string key, r.GetString());
      COMPSTOR_ASSIGN_OR_RETURN(std::string value, r.GetString());
      res.rows.emplace_back(std::move(key), std::move(value));
    }
    reply.results.push_back(std::move(res));
  }
  return reply;
}

void PutMetricValue(util::ByteWriter& w, const telemetry::MetricValue& m,
                    std::uint8_t version) {
  w.PutString(m.name);
  w.PutU8(static_cast<std::uint8_t>(m.kind));
  w.PutF64(m.value);
  w.PutU64(m.count);
  w.PutF64(m.sum);
  w.PutF64(m.min);
  w.PutF64(m.max);
  w.PutF64(m.p50);
  w.PutF64(m.p95);
  w.PutF64(m.p99);
  if (version >= 6) {
    w.PutU64(m.underflow);
    w.PutU64(m.overflow);
  }
}

Result<telemetry::MetricValue> GetMetricValue(util::ByteReader& r,
                                              std::uint8_t version) {
  telemetry::MetricValue m;
  COMPSTOR_ASSIGN_OR_RETURN(m.name, r.GetString());
  COMPSTOR_ASSIGN_OR_RETURN(std::uint8_t kind, r.GetU8());
  if (kind > static_cast<std::uint8_t>(telemetry::MetricKind::kHistogram)) {
    return InvalidArgument("proto: bad metric kind");
  }
  m.kind = static_cast<telemetry::MetricKind>(kind);
  COMPSTOR_ASSIGN_OR_RETURN(m.value, r.GetF64());
  COMPSTOR_ASSIGN_OR_RETURN(m.count, r.GetU64());
  COMPSTOR_ASSIGN_OR_RETURN(m.sum, r.GetF64());
  COMPSTOR_ASSIGN_OR_RETURN(m.min, r.GetF64());
  COMPSTOR_ASSIGN_OR_RETURN(m.max, r.GetF64());
  COMPSTOR_ASSIGN_OR_RETURN(m.p50, r.GetF64());
  COMPSTOR_ASSIGN_OR_RETURN(m.p95, r.GetF64());
  COMPSTOR_ASSIGN_OR_RETURN(m.p99, r.GetF64());
  if (version >= 6) {
    COMPSTOR_ASSIGN_OR_RETURN(m.underflow, r.GetU64());
    COMPSTOR_ASSIGN_OR_RETURN(m.overflow, r.GetU64());
  }
  return m;
}

void PutSeriesDelta(util::ByteWriter& w, const telemetry::SeriesDelta& d) {
  w.PutU64(d.next_cursor);
  w.PutU64(d.dropped);
  w.PutU32(d.base_fields);
  w.PutU32(static_cast<std::uint32_t>(d.new_fields.size()));
  for (const telemetry::SeriesField& f : d.new_fields) {
    w.PutString(f.name);
    w.PutU8(static_cast<std::uint8_t>(f.kind));
  }
  w.PutU32(static_cast<std::uint32_t>(d.samples.size()));
  for (const telemetry::SeriesDelta::Sample& s : d.samples) {
    w.PutU64(s.seq);
    w.PutF64(s.t_s);
    w.PutF64(s.wall_s);
    w.PutU8(s.full ? 1 : 0);
    w.PutU32(static_cast<std::uint32_t>(s.values.size()));
    for (const auto& [idx, v] : s.values) {
      w.PutU32(idx);
      w.PutF64(v);
    }
  }
}

Result<telemetry::SeriesDelta> GetSeriesDelta(util::ByteReader& r) {
  telemetry::SeriesDelta d;
  COMPSTOR_ASSIGN_OR_RETURN(d.next_cursor, r.GetU64());
  COMPSTOR_ASSIGN_OR_RETURN(d.dropped, r.GetU64());
  COMPSTOR_ASSIGN_OR_RETURN(d.base_fields, r.GetU32());
  COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t n_fields, r.GetU32());
  d.new_fields.reserve(n_fields);
  for (std::uint32_t i = 0; i < n_fields; ++i) {
    telemetry::SeriesField f;
    COMPSTOR_ASSIGN_OR_RETURN(f.name, r.GetString());
    COMPSTOR_ASSIGN_OR_RETURN(std::uint8_t kind, r.GetU8());
    if (kind > static_cast<std::uint8_t>(telemetry::MetricKind::kHistogram)) {
      return InvalidArgument("proto: bad series field kind");
    }
    f.kind = static_cast<telemetry::MetricKind>(kind);
    d.new_fields.push_back(std::move(f));
  }
  COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t n_samples, r.GetU32());
  d.samples.reserve(n_samples);
  for (std::uint32_t i = 0; i < n_samples; ++i) {
    telemetry::SeriesDelta::Sample s;
    COMPSTOR_ASSIGN_OR_RETURN(s.seq, r.GetU64());
    COMPSTOR_ASSIGN_OR_RETURN(s.t_s, r.GetF64());
    COMPSTOR_ASSIGN_OR_RETURN(s.wall_s, r.GetF64());
    COMPSTOR_ASSIGN_OR_RETURN(std::uint8_t full, r.GetU8());
    s.full = full != 0;
    COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t n_values, r.GetU32());
    s.values.reserve(n_values);
    for (std::uint32_t j = 0; j < n_values; ++j) {
      std::uint32_t idx;
      double v;
      COMPSTOR_ASSIGN_OR_RETURN(idx, r.GetU32());
      COMPSTOR_ASSIGN_OR_RETURN(v, r.GetF64());
      s.values.emplace_back(idx, v);
    }
    d.samples.push_back(std::move(s));
  }
  return d;
}

void PutHealthEvents(util::ByteWriter& w,
                     const std::vector<telemetry::HealthEvent>& events) {
  w.PutU32(static_cast<std::uint32_t>(events.size()));
  for (const telemetry::HealthEvent& e : events) {
    w.PutU64(e.seq);
    w.PutU8(static_cast<std::uint8_t>(e.type));
    w.PutU8(static_cast<std::uint8_t>(e.severity));
    w.PutF64(e.t_s);
    w.PutF64(e.wall_s);
    w.PutString(e.subject);
    w.PutString(e.message);
    w.PutF64(e.value);
  }
}

Result<std::vector<telemetry::HealthEvent>> GetHealthEvents(util::ByteReader& r) {
  COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t n, r.GetU32());
  std::vector<telemetry::HealthEvent> events;
  events.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    telemetry::HealthEvent e;
    COMPSTOR_ASSIGN_OR_RETURN(e.seq, r.GetU64());
    COMPSTOR_ASSIGN_OR_RETURN(std::uint8_t type, r.GetU8());
    if (type > static_cast<std::uint8_t>(telemetry::HealthType::kRecovered)) {
      return InvalidArgument("proto: bad health event type");
    }
    e.type = static_cast<telemetry::HealthType>(type);
    COMPSTOR_ASSIGN_OR_RETURN(std::uint8_t severity, r.GetU8());
    if (severity > static_cast<std::uint8_t>(telemetry::Severity::kCritical)) {
      return InvalidArgument("proto: bad health event severity");
    }
    e.severity = static_cast<telemetry::Severity>(severity);
    COMPSTOR_ASSIGN_OR_RETURN(e.t_s, r.GetF64());
    COMPSTOR_ASSIGN_OR_RETURN(e.wall_s, r.GetF64());
    COMPSTOR_ASSIGN_OR_RETURN(e.subject, r.GetString());
    COMPSTOR_ASSIGN_OR_RETURN(e.message, r.GetString());
    COMPSTOR_ASSIGN_OR_RETURN(e.value, r.GetF64());
    events.push_back(std::move(e));
  }
  return events;
}

void PutCommand(util::ByteWriter& w, const Command& c, std::uint8_t version) {
  w.PutU8(static_cast<std::uint8_t>(c.type));
  w.PutString(c.executable);
  PutStringList(w, c.args);
  w.PutString(c.command_line);
  PutStringList(w, c.input_files);
  w.PutString(c.output_file);
  w.PutString(c.stdin_data);
  w.PutU32(c.permissions);
  if (version >= 3) {
    w.PutU64(c.trace_query_id);
    w.PutU64(c.trace_parent_span);
  }
  if (version >= 4) {
    w.PutU32(c.tenant_id);
    w.PutU8(c.priority);
  }
  if (version >= 5) PutKvRequest(w, c.kv_request);
}

Result<Command> GetCommand(util::ByteReader& r, std::uint8_t version) {
  Command c;
  COMPSTOR_ASSIGN_OR_RETURN(std::uint8_t type, r.GetU8());
  if (type > static_cast<std::uint8_t>(CommandType::kShellScript)) {
    return InvalidArgument("proto: bad command type");
  }
  c.type = static_cast<CommandType>(type);
  COMPSTOR_ASSIGN_OR_RETURN(c.executable, r.GetString());
  COMPSTOR_ASSIGN_OR_RETURN(c.args, GetStringList(r));
  COMPSTOR_ASSIGN_OR_RETURN(c.command_line, r.GetString());
  COMPSTOR_ASSIGN_OR_RETURN(c.input_files, GetStringList(r));
  COMPSTOR_ASSIGN_OR_RETURN(c.output_file, r.GetString());
  COMPSTOR_ASSIGN_OR_RETURN(c.stdin_data, r.GetString());
  COMPSTOR_ASSIGN_OR_RETURN(c.permissions, r.GetU32());
  if (version >= 3) {
    COMPSTOR_ASSIGN_OR_RETURN(c.trace_query_id, r.GetU64());
    COMPSTOR_ASSIGN_OR_RETURN(c.trace_parent_span, r.GetU64());
  }
  if (version >= 4) {
    COMPSTOR_ASSIGN_OR_RETURN(c.tenant_id, r.GetU32());
    COMPSTOR_ASSIGN_OR_RETURN(c.priority, r.GetU8());
  }
  if (version >= 5) {
    COMPSTOR_ASSIGN_OR_RETURN(c.kv_request, GetKvRequest(r));
  }
  return c;
}

void PutResponse(util::ByteWriter& w, const Response& resp, std::uint8_t version) {
  w.PutU16(resp.status_code);
  w.PutString(resp.status_message);
  w.PutU32(static_cast<std::uint32_t>(resp.exit_code));
  w.PutString(resp.stdout_data);
  w.PutString(resp.stderr_data);
  w.PutU32(resp.pid);
  w.PutF64(resp.start_time_s);
  w.PutF64(resp.end_time_s);
  w.PutF64(resp.cpu_seconds);
  w.PutF64(resp.io_seconds);
  w.PutU64(resp.bytes_read);
  w.PutU64(resp.bytes_written);
  w.PutF64(resp.energy_joules);
  if (version >= 3) w.PutU64(resp.root_span_id);
  if (version >= 5) PutKvReply(w, resp.kv);
}

Result<Response> GetResponse(util::ByteReader& r, std::uint8_t version) {
  Response resp;
  COMPSTOR_ASSIGN_OR_RETURN(resp.status_code, r.GetU16());
  COMPSTOR_ASSIGN_OR_RETURN(resp.status_message, r.GetString());
  COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t exit_code, r.GetU32());
  resp.exit_code = static_cast<std::int32_t>(exit_code);
  COMPSTOR_ASSIGN_OR_RETURN(resp.stdout_data, r.GetString());
  COMPSTOR_ASSIGN_OR_RETURN(resp.stderr_data, r.GetString());
  COMPSTOR_ASSIGN_OR_RETURN(resp.pid, r.GetU32());
  COMPSTOR_ASSIGN_OR_RETURN(resp.start_time_s, r.GetF64());
  COMPSTOR_ASSIGN_OR_RETURN(resp.end_time_s, r.GetF64());
  COMPSTOR_ASSIGN_OR_RETURN(resp.cpu_seconds, r.GetF64());
  COMPSTOR_ASSIGN_OR_RETURN(resp.io_seconds, r.GetF64());
  COMPSTOR_ASSIGN_OR_RETURN(resp.bytes_read, r.GetU64());
  COMPSTOR_ASSIGN_OR_RETURN(resp.bytes_written, r.GetU64());
  COMPSTOR_ASSIGN_OR_RETURN(resp.energy_joules, r.GetF64());
  if (version >= 3) {
    COMPSTOR_ASSIGN_OR_RETURN(resp.root_span_id, r.GetU64());
  }
  if (version >= 5) {
    COMPSTOR_ASSIGN_OR_RETURN(resp.kv, GetKvReply(r));
  }
  return resp;
}

/// Frame = tag | version | body | crc32c(tag..body).
std::vector<std::uint8_t> Frame(std::uint8_t tag, util::ByteWriter body,
                                std::uint8_t version = kWireVersion) {
  util::ByteWriter w;
  w.PutU8(tag);
  w.PutU8(version);
  w.PutRaw(body.bytes());
  const std::uint32_t crc = util::Crc32c(w.bytes().data(), w.bytes().size());
  w.PutU32(crc);
  return w.Take();
}

Result<util::ByteReader> Unframe(std::uint8_t expected_tag,
                                 std::span<const std::uint8_t> data,
                                 std::uint8_t* version) {
  if (data.size() < 6) return DataLoss("proto: frame too short");
  const std::uint32_t stored =
      static_cast<std::uint32_t>(data[data.size() - 4]) |
      (static_cast<std::uint32_t>(data[data.size() - 3]) << 8) |
      (static_cast<std::uint32_t>(data[data.size() - 2]) << 16) |
      (static_cast<std::uint32_t>(data[data.size() - 1]) << 24);
  if (util::Crc32c(data.data(), data.size() - 4) != stored) {
    return DataLoss("proto: frame crc mismatch");
  }
  if (data[0] != expected_tag) return InvalidArgument("proto: unexpected frame tag");
  if (data[1] < kMinWireVersion || data[1] > kWireVersion) {
    return InvalidArgument("proto: unsupported version");
  }
  if (version != nullptr) *version = data[1];
  return util::ByteReader(data.subspan(2, data.size() - 6));
}

}  // namespace

std::vector<std::uint8_t> Serialize(const Minion& minion, std::uint8_t version) {
  util::ByteWriter body;
  body.PutU64(minion.id);
  PutCommand(body, minion.command, version);
  PutResponse(body, minion.response, version);
  return Frame(kFrameMinion, std::move(body), version);
}

Result<Minion> DeserializeMinion(std::span<const std::uint8_t> data) {
  std::uint8_t version = kMinWireVersion;
  COMPSTOR_ASSIGN_OR_RETURN(util::ByteReader r,
                            Unframe(kFrameMinion, data, &version));
  Minion m;
  COMPSTOR_ASSIGN_OR_RETURN(m.id, r.GetU64());
  COMPSTOR_ASSIGN_OR_RETURN(m.command, GetCommand(r, version));
  COMPSTOR_ASSIGN_OR_RETURN(m.response, GetResponse(r, version));
  return m;
}

std::vector<std::uint8_t> Serialize(const Query& query, std::uint8_t version) {
  util::ByteWriter body;
  body.PutU64(query.id);
  body.PutU8(static_cast<std::uint8_t>(query.type));
  body.PutString(query.task_name);
  body.PutString(query.task_script);
  if (version >= 5) PutKvRequest(body, query.kv_request);
  if (version >= 6) {
    body.PutU64(query.stats_cursor);
    body.PutU32(query.stats_known_fields);
    body.PutU64(query.event_cursor);
  }
  return Frame(kFrameQuery, std::move(body), version);
}

Result<Query> DeserializeQuery(std::span<const std::uint8_t> data) {
  std::uint8_t version = kMinWireVersion;
  COMPSTOR_ASSIGN_OR_RETURN(util::ByteReader r,
                            Unframe(kFrameQuery, data, &version));
  Query q;
  COMPSTOR_ASSIGN_OR_RETURN(q.id, r.GetU64());
  COMPSTOR_ASSIGN_OR_RETURN(std::uint8_t type, r.GetU8());
  const std::uint8_t max_type =
      version >= 6   ? static_cast<std::uint8_t>(QueryType::kStatsDelta)
      : version >= 5 ? static_cast<std::uint8_t>(QueryType::kKv)
                     : static_cast<std::uint8_t>(QueryType::kStats);
  if (type > max_type) {
    return InvalidArgument("proto: bad query type");
  }
  q.type = static_cast<QueryType>(type);
  COMPSTOR_ASSIGN_OR_RETURN(q.task_name, r.GetString());
  COMPSTOR_ASSIGN_OR_RETURN(q.task_script, r.GetString());
  if (version >= 5) {
    COMPSTOR_ASSIGN_OR_RETURN(q.kv_request, GetKvRequest(r));
  }
  if (version >= 6) {
    COMPSTOR_ASSIGN_OR_RETURN(q.stats_cursor, r.GetU64());
    COMPSTOR_ASSIGN_OR_RETURN(q.stats_known_fields, r.GetU32());
    COMPSTOR_ASSIGN_OR_RETURN(q.event_cursor, r.GetU64());
  }
  return q;
}

std::vector<std::uint8_t> Serialize(const QueryReply& reply,
                                    std::uint8_t version) {
  util::ByteWriter body;
  body.PutU64(reply.id);
  body.PutU16(reply.status_code);
  body.PutString(reply.status_message);
  body.PutU32(reply.core_count);
  body.PutF64(reply.utilization);
  body.PutF64(reply.temperature_c);
  body.PutU32(reply.running_tasks);
  body.PutU32(reply.queued_minions);
  body.PutF64(reply.uptime_virtual_s);
  body.PutU32(static_cast<std::uint32_t>(reply.sq_depths.size()));
  for (std::uint32_t d : reply.sq_depths) body.PutU32(d);
  PutStringList(body, reply.task_names);
  body.PutU32(static_cast<std::uint32_t>(reply.metrics.size()));
  for (const telemetry::MetricValue& m : reply.metrics) {
    PutMetricValue(body, m, version);
  }
  body.PutU32(static_cast<std::uint32_t>(reply.processes.size()));
  for (const QueryReply::Process& p : reply.processes) {
    body.PutU32(p.pid);
    body.PutU8(p.state);
    body.PutString(p.summary);
    body.PutF64(p.start_time_s);
    body.PutF64(p.end_time_s);
  }
  if (version >= 5) PutKvReply(body, reply.kv);
  if (version >= 6) {
    PutSeriesDelta(body, reply.series);
    PutHealthEvents(body, reply.events);
    body.PutU64(reply.next_event_cursor);
  }
  return Frame(kFrameQueryReply, std::move(body), version);
}

Result<QueryReply> DeserializeQueryReply(std::span<const std::uint8_t> data) {
  std::uint8_t version = kMinWireVersion;
  COMPSTOR_ASSIGN_OR_RETURN(util::ByteReader r,
                            Unframe(kFrameQueryReply, data, &version));
  QueryReply q;
  COMPSTOR_ASSIGN_OR_RETURN(q.id, r.GetU64());
  COMPSTOR_ASSIGN_OR_RETURN(q.status_code, r.GetU16());
  COMPSTOR_ASSIGN_OR_RETURN(q.status_message, r.GetString());
  COMPSTOR_ASSIGN_OR_RETURN(q.core_count, r.GetU32());
  COMPSTOR_ASSIGN_OR_RETURN(q.utilization, r.GetF64());
  COMPSTOR_ASSIGN_OR_RETURN(q.temperature_c, r.GetF64());
  COMPSTOR_ASSIGN_OR_RETURN(q.running_tasks, r.GetU32());
  COMPSTOR_ASSIGN_OR_RETURN(q.queued_minions, r.GetU32());
  COMPSTOR_ASSIGN_OR_RETURN(q.uptime_virtual_s, r.GetF64());
  COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t n_depths, r.GetU32());
  q.sq_depths.reserve(n_depths);
  for (std::uint32_t i = 0; i < n_depths; ++i) {
    COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t d, r.GetU32());
    q.sq_depths.push_back(d);
  }
  COMPSTOR_ASSIGN_OR_RETURN(q.task_names, GetStringList(r));
  COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t n_metrics, r.GetU32());
  q.metrics.reserve(n_metrics);
  for (std::uint32_t i = 0; i < n_metrics; ++i) {
    COMPSTOR_ASSIGN_OR_RETURN(telemetry::MetricValue m, GetMetricValue(r, version));
    q.metrics.push_back(std::move(m));
  }
  COMPSTOR_ASSIGN_OR_RETURN(std::uint32_t n_procs, r.GetU32());
  q.processes.reserve(n_procs);
  for (std::uint32_t i = 0; i < n_procs; ++i) {
    QueryReply::Process p;
    COMPSTOR_ASSIGN_OR_RETURN(p.pid, r.GetU32());
    COMPSTOR_ASSIGN_OR_RETURN(p.state, r.GetU8());
    COMPSTOR_ASSIGN_OR_RETURN(p.summary, r.GetString());
    COMPSTOR_ASSIGN_OR_RETURN(p.start_time_s, r.GetF64());
    COMPSTOR_ASSIGN_OR_RETURN(p.end_time_s, r.GetF64());
    q.processes.push_back(std::move(p));
  }
  if (version >= 5) {
    COMPSTOR_ASSIGN_OR_RETURN(q.kv, GetKvReply(r));
  }
  if (version >= 6) {
    COMPSTOR_ASSIGN_OR_RETURN(q.series, GetSeriesDelta(r));
    COMPSTOR_ASSIGN_OR_RETURN(q.events, GetHealthEvents(r));
    COMPSTOR_ASSIGN_OR_RETURN(q.next_event_cursor, r.GetU64());
  }
  return q;
}

void StatusToResponse(const Status& status, Response* response) {
  response->status_code = static_cast<std::uint16_t>(status.code());
  response->status_message = status.message();
}

Status ResponseToStatus(const Response& response) {
  if (response.ok()) return OkStatus();
  return Status(static_cast<StatusCode>(response.status_code), response.status_message);
}

}  // namespace compstor::proto
