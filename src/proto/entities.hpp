// The virtual entities of the CompStor software stack (paper §III.B):
//
//   Command  — what to run in-storage (executable or shell line/script,
//              arguments, IO files, access permissions);
//   Response — the outcome (status, exit code, captured output, timing,
//              energy) filled in by the device;
//   Minion   — a Command plus its Response, traveling client -> CompStor ->
//              client (Fig 3);
//   Query    — an administrative message: device status for load balancing,
//              dynamic task loading, task listing (cannot start a task).
//
// All entities serialize to an explicit little-endian wire format with a
// CRC32C frame check, since they cross the emulated PCIe link.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "kv/types.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/timeseries.hpp"

namespace compstor::proto {

/// Wire version this build emits. v3 added the distributed-tracing fields
/// (Command.trace_query_id / trace_parent_span, Response.root_span_id);
/// v4 adds the multi-tenant QoS fields (Command.tenant_id / priority);
/// v5 adds the in-storage KV payload (Command.kv_request / Response.kv,
/// QueryType::kKv with the same payload on Query/QueryReply); v6 adds the
/// observability plane: QueryType::kStatsDelta with cursor fields on Query,
/// the time-series delta + health events on QueryReply, and the histogram
/// underflow/overflow counters on MetricValue. New fields are appended at
/// the end of their sections so this decoder still reads v2..v5 frames: the
/// extra fields are only consumed when the frame's version byte says they
/// are present.
inline constexpr std::uint8_t kWireVersion = 6;
/// Oldest version this build still decodes.
inline constexpr std::uint8_t kMinWireVersion = 2;

enum class CommandType : std::uint8_t {
  kExecutable = 0,   // run a registered application by name
  kShellCommand = 1, // run one shell command line (may contain pipes)
  kShellScript = 2,  // run a multi-line shell script
};

/// Access permissions the client grants the in-situ task.
enum PermissionBits : std::uint32_t {
  kPermRead = 1u << 0,
  kPermWrite = 1u << 1,
  kPermSpawn = 1u << 2,  // may invoke other commands (shell pipelines)
};

struct Command {
  CommandType type = CommandType::kExecutable;
  std::string executable;              // kExecutable: registered app name
  std::vector<std::string> args;       // kExecutable: argv
  std::string command_line;            // kShellCommand / kShellScript body
  std::vector<std::string> input_files;   // declared inputs (documentation + ACL)
  std::string output_file;             // if set, stdout is redirected here
  std::string stdin_data;              // piped standard input
  std::uint32_t permissions = kPermRead | kPermWrite | kPermSpawn;

  // Distributed-tracing context (v3+; 0 = untraced). The client stamps the
  // originating query id and the host-side root span; every device span on
  // this command's behalf nests under them.
  std::uint64_t trace_query_id = 0;
  std::uint64_t trace_parent_span = 0;

  // Multi-tenant QoS (v4+). The submitting tenant (0 = unattributed) and its
  // service class (qos::Priority as integer: 0 interactive, 1 bulk). Stamped
  // by the client alongside the trace context; the device's NVMe arbiter and
  // core scheduler serve competing tenants weighted-fair by these fields.
  std::uint32_t tenant_id = 0;
  std::uint8_t priority = 0;

  /// v5+: structured KV batch for the "kv" in-situ app (kExecutable with
  /// executable == "kv"). Carrying the ops as typed fields instead of argv
  /// keeps keys/values binary-safe and lets the device answer with
  /// Response.kv rather than parsed stdout. Empty for non-KV commands; a v4
  /// peer decodes the command with the batch absent.
  kv::Request kv_request;
};

struct Response {
  std::uint16_t status_code = 0;  // StatusCode as integer; 0 = OK
  std::string status_message;
  std::int32_t exit_code = 0;
  std::string stdout_data;        // truncated to kMaxInlineOutput
  std::string stderr_data;
  std::uint32_t pid = 0;
  double start_time_s = 0;        // device virtual time
  double end_time_s = 0;
  double cpu_seconds = 0;
  double io_seconds = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  double energy_joules = 0;       // device-side energy attributed to the task
  /// v3+: span id of the device-side "run" span for this task, so the host
  /// can link its view of the query to the device trace without heuristics.
  std::uint64_t root_span_id = 0;
  /// v5+: per-op results and transfer accounting of a KV batch command.
  kv::Reply kv;

  bool ok() const { return status_code == 0; }
  double elapsed_s() const { return end_time_s - start_time_s; }

  static constexpr std::size_t kMaxInlineOutput = 1 << 20;
};

struct Minion {
  std::uint64_t id = 0;
  Command command;
  Response response;
};

enum class QueryType : std::uint8_t {
  kPing = 0,
  kStatus = 1,
  kLoadTask = 2,      // dynamic task loading: name + script body
  kListTasks = 3,
  kProcessTable = 4,  // running/finished in-storage processes (ps-style)
  kStats = 5,         // snapshot of the device-side telemetry registry
  kKv = 6,            // v5+: KV batch on the admin plane (no task spawn)
  kStatsDelta = 7,    // v6+: time-series samples + health events past a cursor
};

struct Query {
  std::uint64_t id = 0;
  QueryType type = QueryType::kPing;
  std::string task_name;    // kLoadTask
  std::string task_script;  // kLoadTask
  /// kKv payload (v5+): executed directly by the agent against the device's
  /// resident store — the admin-plane path for tooling and tests. Bulk
  /// traffic should ride the Command path so it passes the tenant frontier.
  kv::Request kv_request;

  /// kStatsDelta cursors (v6+). The client holds them between polls: the
  /// device ships only series samples with seq >= stats_cursor (field names
  /// only past the first stats_known_fields columns) and health events with
  /// seq >= event_cursor.
  std::uint64_t stats_cursor = 0;
  std::uint32_t stats_known_fields = 0;
  std::uint64_t event_cursor = 0;
};

struct QueryReply {
  std::uint64_t id = 0;
  std::uint16_t status_code = 0;
  std::string status_message;
  // kStatus payload (used by clients for load balancing, §III.B).
  std::uint32_t core_count = 0;
  double utilization = 0;        // 0..1 across cores
  double temperature_c = 0;
  std::uint32_t running_tasks = 0;
  std::uint32_t queued_minions = 0;
  double uptime_virtual_s = 0;
  /// Per-queue-pair submission-queue depth (index == sqid). Finer-grained
  /// than `queued_minions`: load balancers can see *where* the backlog sits
  /// and break utilization ties deterministically.
  std::vector<std::uint32_t> sq_depths;
  std::vector<std::string> task_names;  // kListTasks

  /// kStats payload: the device-side telemetry registry, materialized.
  std::vector<telemetry::MetricValue> metrics;

  // kProcessTable payload (ps-style rows).
  struct Process {
    std::uint32_t pid = 0;
    std::uint8_t state = 0;  // 0 running, 1 done, 2 failed
    std::string summary;
    double start_time_s = 0;
    double end_time_s = 0;
  };
  std::vector<Process> processes;

  /// kKv payload (v5+).
  kv::Reply kv;

  /// kStatsDelta payload (v6+): the cursor-delta slice of the device's
  /// time-series ring plus any health events raised past the event cursor.
  telemetry::SeriesDelta series;
  std::vector<telemetry::HealthEvent> events;
  std::uint64_t next_event_cursor = 0;

  bool ok() const { return status_code == 0; }
};

// --- serialization (little-endian, CRC-framed) ---
/// `version` selects the emitted wire version (tests use it to produce
/// down-level frames); decode accepts [kMinWireVersion, kWireVersion].
std::vector<std::uint8_t> Serialize(const Minion& minion,
                                    std::uint8_t version = kWireVersion);
Result<Minion> DeserializeMinion(std::span<const std::uint8_t> data);

std::vector<std::uint8_t> Serialize(const Query& query,
                                    std::uint8_t version = kWireVersion);
Result<Query> DeserializeQuery(std::span<const std::uint8_t> data);

std::vector<std::uint8_t> Serialize(const QueryReply& reply,
                                    std::uint8_t version = kWireVersion);
Result<QueryReply> DeserializeQueryReply(std::span<const std::uint8_t> data);

/// Converts a Status into response fields and back.
void StatusToResponse(const Status& status, Response* response);
Status ResponseToStatus(const Response& response);

}  // namespace compstor::proto
