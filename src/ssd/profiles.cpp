#include "ssd/profiles.hpp"

#include <algorithm>
#include <cmath>

namespace compstor::ssd {

using namespace compstor::units;

namespace {

std::uint32_t ScaledBlocks(std::uint32_t full_blocks, double scale) {
  return std::max<std::uint32_t>(8, static_cast<std::uint32_t>(std::lround(full_blocks * scale)));
}

}  // namespace

SsdProfile CompStorProfile(double capacity_scale) {
  SsdProfile p;
  p.model = "CompStor 24TB NVMe SSD";

  // Full-scale geometry: 16 channels x 8 dies x 2 planes x 30720 blocks x
  // 1024 pages x 4KiB ~= 32TB raw (24TB class usable after OP). Scaled-down
  // variants shrink blocks-per-plane only; timing and bandwidth are
  // scale-free. (Never instantiate an Ftl at scale 1.0 in tests: the flat
  // mapping tables would be tens of GB.)
  p.geometry.channels = 16;
  p.geometry.dies_per_channel = 8;
  p.geometry.planes_per_die = 2;
  p.geometry.blocks_per_plane = ScaledBlocks(30720, capacity_scale);
  p.geometry.pages_per_block = capacity_scale >= 1.0 ? 1024 : 256;
  p.geometry.page_data_bytes = 4096;
  p.geometry.page_spare_bytes = 544;

  p.timing.read_page = usec(70);
  p.timing.program_page = usec(600);
  p.timing.erase_block = msec(3);
  p.timing.channel_bandwidth = MBps(533);  // paper Fig 1

  p.ftl.op_ratio = 0.10;
  p.ftl.gc_low_watermark = 4;
  p.ftl.gc_high_watermark = 8;
  // The paper's "fast-release host data buffer": 8 MiB of controller DRAM.
  p.ftl.write_cache_pages = 2048;

  // PCIe gen3 x4 endpoint.
  p.link.bandwidth_bytes_per_s = GBps(3.2);
  p.link.base_latency_s = usec(5);
  p.link.pj_per_byte = 450.0;

  p.flash_power.read_uj_per_page = 15.0;
  p.flash_power.program_uj_per_page = 90.0;
  p.flash_power.erase_uj_per_block = 220.0;
  p.flash_power.channel_pj_per_byte = 25.0;
  p.flash_power.controller_pj_per_byte = 60.0;

  // The modified controller gives the ISPS a direct, wide path to the media
  // ("ISPS can access the flash data more efficiently than the host CPU").
  p.internal_bandwidth_bytes_per_s = GBps(6.0);
  p.internal_latency_s = usec(2);

  // Enterprise multi-queue front-end: four host queue pairs feeding four
  // back-end workers, so host IO and ISPS traffic overlap in the model.
  p.nvme_queue_pairs = 4;
  p.nvme_queue_depth = 256;
  p.nvme_backend_workers = 4;
  return p;
}

SsdProfile OffTheShelfProfile(double capacity_scale) {
  SsdProfile p;
  p.model = "OTS 256GB NVMe SSD";

  // Client-class part: 8 channels, shallower parallelism; full scale
  // 8 x 2 x 2 x 4096 x 512 x 4KiB ~= 274 GB raw (256 GB class usable).
  p.geometry.channels = 8;
  p.geometry.dies_per_channel = 2;
  p.geometry.planes_per_die = 2;
  p.geometry.blocks_per_plane = ScaledBlocks(4096, capacity_scale);
  p.geometry.pages_per_block = capacity_scale >= 1.0 ? 512 : 256;
  p.geometry.page_data_bytes = 4096;
  p.geometry.page_spare_bytes = 544;

  p.timing.read_page = usec(80);
  p.timing.program_page = usec(700);
  p.timing.erase_block = msec(3.5);
  p.timing.channel_bandwidth = MBps(400);

  p.ftl.op_ratio = 0.07;
  p.ftl.write_cache_pages = 1024;  // 4 MiB client-class write buffer

  p.link.bandwidth_bytes_per_s = GBps(3.2);
  p.link.base_latency_s = usec(6);
  p.link.pj_per_byte = 450.0;

  p.flash_power.read_uj_per_page = 18.0;
  p.flash_power.program_uj_per_page = 100.0;
  p.flash_power.erase_uj_per_block = 240.0;
  p.flash_power.channel_pj_per_byte = 28.0;
  p.flash_power.controller_pj_per_byte = 65.0;

  p.internal_bandwidth_bytes_per_s = 0;  // no ISPS

  // Client-class part: fewer queue pairs, shallower device parallelism.
  p.nvme_queue_pairs = 2;
  p.nvme_queue_depth = 128;
  p.nvme_backend_workers = 2;
  return p;
}

SsdProfile TestProfile() {
  SsdProfile p = CompStorProfile(1.0);
  p.model = "CompStor test SSD";
  p.geometry.channels = 4;
  p.geometry.dies_per_channel = 2;
  p.geometry.planes_per_die = 1;
  p.geometry.blocks_per_plane = 48;
  p.geometry.pages_per_block = 32;
  p.geometry.page_data_bytes = 4096;
  p.geometry.page_spare_bytes = 544;
  p.ftl.op_ratio = 0.15;
  p.ftl.gc_low_watermark = 3;
  p.ftl.gc_high_watermark = 6;
  // Write-through keeps unit tests deterministic about flash op counts;
  // dedicated cache tests opt in explicitly.
  p.ftl.write_cache_pages = 0;
  // Two pairs / two workers so every unit test exercises the concurrent
  // pipeline, while op counters stay small enough to reason about.
  p.nvme_queue_pairs = 2;
  p.nvme_queue_depth = 64;
  p.nvme_backend_workers = 2;
  return p;
}

SsdProfile FaultyMediaTestProfile() {
  SsdProfile p = TestProfile();
  p.model = "CompStor faulty-media test SSD";
  // Bit flips on: every page read samples the wear-dependent word error
  // model, the SECDED page codec corrects single-bit words on the FTL read
  // path, and the scrubber's media stage rewrites pages it had to correct.
  // The rate is cranked ~100x above the fresh-silicon default so a test
  // touching a few MiB reliably sees correctable errors.
  p.reliability.inject_errors = true;
  p.reliability.base_word_error_rate = 1e-4;
  p.reliability.wear_word_error_rate = 4e-4;
  return p;
}

}  // namespace compstor::ssd
