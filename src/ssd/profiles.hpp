// Device profiles for the two SSDs of the paper's Table IV, plus scaled
// variants for tests (full 24TB mapping tables would waste gigabytes of host
// RAM for no modeling benefit; timing/bandwidth constants are scale-free).
#pragma once

#include <cstdint>
#include <string>

#include "energy/energy.hpp"
#include "flash/geometry.hpp"
#include "ftl/ftl.hpp"

namespace compstor::ssd {

struct SsdProfile {
  std::string model;
  flash::Geometry geometry;
  flash::Timing timing;
  flash::Reliability reliability;
  ftl::FtlConfig ftl;
  energy::LinkProfile link;
  energy::FlashPowerProfile flash_power;

  /// ISPS <-> flash internal data path ("high bandwidth, low latency" per the
  /// paper §III.A). Zero bandwidth marks a device with no ISPS (off-the-shelf).
  double internal_bandwidth_bytes_per_s = 0;
  units::Seconds internal_latency_s = 0;

  /// NVMe pipeline shape (plain ints; the Ssd assembles a ControllerConfig
  /// from them). Host-visible queue pairs, per-queue depth, and back-end
  /// workers executing against the FTL concurrently.
  std::size_t nvme_queue_pairs = 1;
  std::size_t nvme_queue_depth = 256;
  std::size_t nvme_backend_workers = 1;

  std::uint64_t UserCapacityBytes() const {
    // Mirrors the FTL's reservation formula.
    const std::uint64_t total = geometry.total_blocks();
    const auto reserved = static_cast<std::uint64_t>(ftl.op_ratio * static_cast<double>(total));
    const std::uint64_t user_blocks =
        total - std::max<std::uint64_t>(reserved, ftl.gc_high_watermark + 1);
    return user_blocks * geometry.pages_per_block * geometry.page_data_bytes;
  }
};

/// The CompStor prototype: 16-channel enterprise SSD with the in-situ path.
/// `capacity_scale` shrinks blocks-per-plane; 1.0 would model the full 24TB.
SsdProfile CompStorProfile(double capacity_scale = 0.001);

/// The comparison device of Table IV: off-the-shelf 256GB NVMe SSD, no ISPS.
SsdProfile OffTheShelfProfile(double capacity_scale = 0.01);

/// Tiny geometry for unit tests (tens of MiB, GC reachable in milliseconds).
SsdProfile TestProfile();

/// TestProfile with media error injection enabled: page reads see seeded
/// single-bit flips at a high rate, exercising the SECDED page codec, the
/// FTL's read-retry, and the scrubber's refresh path end to end (the per-die
/// RNG streams derive from the Ssd constructor seed, so runs reproduce).
SsdProfile FaultyMediaTestProfile();

}  // namespace compstor::ssd
