// Block-device abstraction consumed by the filesystem.
//
// The same SSD exposes two implementations: the host view (through NVMe
// queues and the PCIe link — every byte pays the interface toll) and the
// ISPS-internal view (through the flash-access device driver — bytes stay
// inside the device). This split is the mechanism behind the paper's energy
// results.
#pragma once

#include <cstdint>
#include <span>

#include "common/status.hpp"

namespace compstor::ssd {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// `out.size()` must be a multiple of block_size().
  virtual Status Read(std::uint64_t lba, std::span<std::uint8_t> out) = 0;
  /// `data.size()` must be a multiple of block_size().
  virtual Status Write(std::uint64_t lba, std::span<const std::uint8_t> data) = 0;
  virtual Status Trim(std::uint64_t lba, std::uint64_t nblocks) = 0;

  virtual std::uint64_t block_count() const = 0;
  virtual std::uint32_t block_size() const = 0;
};

}  // namespace compstor::ssd
