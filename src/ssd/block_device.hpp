// Block-device abstraction consumed by the filesystem.
//
// The same SSD exposes two implementations: the host view (through NVMe
// queues and the PCIe link — every byte pays the interface toll) and the
// ISPS-internal view (through the flash-access device driver — bytes stay
// inside the device). This split is the mechanism behind the paper's energy
// results.
#pragma once

#include <cstdint>
#include <span>

#include "common/status.hpp"

namespace compstor::ssd {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// `out.size()` must be a multiple of block_size().
  virtual Status Read(std::uint64_t lba, std::span<std::uint8_t> out) = 0;
  /// `data.size()` must be a multiple of block_size().
  virtual Status Write(std::uint64_t lba, std::span<const std::uint8_t> data) = 0;
  virtual Status Trim(std::uint64_t lba, std::uint64_t nblocks) = 0;

  /// Write barrier: returns once every previously acknowledged write is
  /// durable on media. The emulated FTL is write-through unless the profile
  /// enables a write cache, so the default no-op suits devices with no
  /// volatile state; the SSD views forward to the FTL flush.
  virtual Status Flush() { return OkStatus(); }

  /// Media-refresh one block: re-reads the backing flash page through ECC
  /// and rewrites it if correctable errors were found. kDataLoss means the
  /// page was uncorrectable (the block is retired; subsequent reads return
  /// zeros). Only the internal view implements this — scrubbing is a
  /// device-side maintenance duty, not a host verb.
  virtual Status Scrub(std::uint64_t lba) {
    (void)lba;
    return Unimplemented("scrub not supported on this view");
  }

  virtual std::uint64_t block_count() const = 0;
  virtual std::uint32_t block_size() const = 0;
};

}  // namespace compstor::ssd
