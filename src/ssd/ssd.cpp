#include "ssd/ssd.hpp"

#include <cstring>
#include <future>

namespace compstor::ssd {

namespace {
// Largest single NVMe IO the views issue; larger requests are split.
constexpr std::uint32_t kMaxNlbPerCommand = 256;
}  // namespace

/// Host path: every block traverses the NVMe queues and the PCIe link.
class Ssd::HostView final : public BlockDevice {
 public:
  explicit HostView(Ssd* ssd) : ssd_(ssd) {}

  Status Read(std::uint64_t lba, std::span<std::uint8_t> out) override {
    return DoIo(nvme::Opcode::kRead, lba, out.data(), nullptr, out.size());
  }
  Status Write(std::uint64_t lba, std::span<const std::uint8_t> data) override {
    return DoIo(nvme::Opcode::kWrite, lba, nullptr, data.data(), data.size());
  }
  Status Trim(std::uint64_t lba, std::uint64_t nblocks) override {
    while (nblocks > 0) {
      const auto chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(nblocks, kMaxNlbPerCommand));
      nvme::Completion cqe = ssd_->host_if_->TrimSync(lba, chunk);
      if (!cqe.status.ok()) return cqe.status;
      lba += chunk;
      nblocks -= chunk;
    }
    return OkStatus();
  }
  Status Flush() override { return ssd_->host_if_->FlushSync().status; }
  std::uint64_t block_count() const override { return ssd_->ftl_->user_pages(); }
  std::uint32_t block_size() const override { return ssd_->ftl_->page_data_bytes(); }

 private:
  Status DoIo(nvme::Opcode op, std::uint64_t lba, std::uint8_t* read_dst,
              const std::uint8_t* write_src, std::size_t bytes) {
    const std::uint32_t page = block_size();
    if (bytes % page != 0) return InvalidArgument("block io: unaligned size");
    std::uint64_t blocks = bytes / page;
    std::size_t offset = 0;
    while (blocks > 0) {
      const auto nlb = static_cast<std::uint32_t>(std::min<std::uint64_t>(blocks, kMaxNlbPerCommand));
      auto buf = std::make_shared<std::vector<std::uint8_t>>(static_cast<std::size_t>(nlb) * page);
      if (op == nvme::Opcode::kWrite) {
        std::memcpy(buf->data(), write_src + offset, buf->size());
      }
      nvme::Completion cqe = (op == nvme::Opcode::kRead)
                                 ? ssd_->host_if_->ReadSync(lba, nlb, buf)
                                 : ssd_->host_if_->WriteSync(lba, nlb, buf);
      if (!cqe.status.ok()) return cqe.status;
      if (op == nvme::Opcode::kRead) {
        std::memcpy(read_dst + offset, buf->data(), buf->size());
      }
      offset += buf->size();
      lba += nlb;
      blocks -= nlb;
    }
    return OkStatus();
  }

  Ssd* ssd_;
};

/// Internal path: direct FTL access; bytes never leave the device.
class Ssd::InternalView final : public BlockDevice {
 public:
  explicit InternalView(Ssd* ssd) : ssd_(ssd) {}

  Status Read(std::uint64_t lba, std::span<std::uint8_t> out) override {
    const std::uint32_t page = block_size();
    if (out.size() % page != 0) return InvalidArgument("block io: unaligned size");
    ftl::IoCost cost;
    for (std::size_t i = 0; i < out.size() / page; ++i) {
      COMPSTOR_RETURN_IF_ERROR(
          ssd_->InternalRead(lba + i, out.subspan(i * page, page), &cost));
    }
    return OkStatus();
  }
  Status Write(std::uint64_t lba, std::span<const std::uint8_t> data) override {
    const std::uint32_t page = block_size();
    if (data.size() % page != 0) return InvalidArgument("block io: unaligned size");
    ftl::IoCost cost;
    for (std::size_t i = 0; i < data.size() / page; ++i) {
      COMPSTOR_RETURN_IF_ERROR(
          ssd_->InternalWrite(lba + i, data.subspan(i * page, page), &cost));
    }
    return OkStatus();
  }
  Status Trim(std::uint64_t lba, std::uint64_t nblocks) override {
    ftl::IoCost cost;
    return ssd_->InternalTrim(lba, nblocks, &cost);
  }
  Status Flush() override {
    ftl::IoCost cost;
    return ssd_->InternalFlush(&cost);
  }
  Status Scrub(std::uint64_t lba) override {
    ftl::IoCost cost;
    return ssd_->InternalScrub(lba, &cost);
  }
  std::uint64_t block_count() const override { return ssd_->ftl_->user_pages(); }
  std::uint32_t block_size() const override { return ssd_->ftl_->page_data_bytes(); }

 private:
  Ssd* ssd_;
};

Ssd::Ssd(const SsdProfile& profile, std::uint64_t seed) : profile_(profile) {
  array_ = std::make_unique<flash::Array>(profile_.geometry, profile_.timing,
                                          profile_.reliability, seed);
  ftl_ = std::make_unique<ftl::Ftl>(array_.get(), profile_.ftl);
  link_ = std::make_unique<nvme::PcieLink>(profile_.link, &meter_);
  nvme::ControllerConfig config;
  config.queue_pairs = profile_.nvme_queue_pairs;
  config.queue_depth = profile_.nvme_queue_depth;
  config.backend_workers = profile_.nvme_backend_workers;
  controller_ = std::make_unique<nvme::Controller>(ftl_.get(), link_.get(), &meter_,
                                                   profile_.flash_power, profile_.model,
                                                   config);
  array_->RegisterMetrics(&registry_);
  ftl_->RegisterMetrics(&registry_);
  controller_->AttachTelemetry(&registry_, &trace_, &query_ledger_);
  registry_.RegisterProbe("trace.dropped_spans", telemetry::MetricKind::kCounter,
                          [this] { return static_cast<double>(trace_.dropped()); });
  registry_.RegisterProbe("ssd.internal_bus_busy_s", telemetry::MetricKind::kGauge,
                          [this] { return InternalBusySeconds(); });
  registry_.RegisterProbe("ssd.energy_j", telemetry::MetricKind::kGauge,
                          [this] { return meter_.TotalJoules(); });
  controller_->Start();
  host_if_ = std::make_unique<nvme::HostInterface>(controller_.get());
  host_view_ = std::make_unique<HostView>(this);
  internal_view_ = std::make_unique<InternalView>(this);
}

Ssd::~Ssd() {
  // Host interface shutdown stops the controller and joins the reaper.
  host_if_->Shutdown();
}

BlockDevice& Ssd::host_block_device() { return *host_view_; }
BlockDevice& Ssd::internal_block_device() { return *internal_view_; }

nvme::Completion Ssd::SubmitInternalSync(nvme::Command cmd) {
  // The internal ring has no completion queue; a stack promise plays the
  // role of the ISPS's completion doorbell.
  std::promise<nvme::Completion> done;
  std::future<nvme::Completion> future = done.get_future();
  cmd.internal = true;
  // The submitting thread (an ISPS core running a traced task) carries the
  // owning query's context; stamp it so the back-end can tag and attribute
  // the flash work, even though it executes on a worker thread.
  cmd.trace = telemetry::CurrentTraceContext();
  // Same propagation for the tenant: internal flash IO issued while serving a
  // minion competes in the arbiter under its owner's virtual queue.
  cmd.qos = qos::CurrentTenant();
  cmd.on_complete = [&done](nvme::Completion cqe) { done.set_value(std::move(cqe)); };
  if (!controller_->SubmitInternal(std::move(cmd))) {
    nvme::Completion cqe;
    cqe.status = Unavailable("controller stopped");
    return cqe;
  }
  return future.get();
}

units::Seconds Ssd::ChargeInternalBus(std::size_t bytes) {
  const units::Seconds bus =
      profile_.internal_latency_s +
      static_cast<double>(bytes) / profile_.internal_bandwidth_bytes_per_s;
  internal_busy_.AddBusy(bus);
  return bus;
}

Status Ssd::InternalRead(std::uint64_t lpn, std::span<std::uint8_t> out,
                         ftl::IoCost* cost) {
  if (!has_isps_path()) return Unavailable("device has no in-situ subsystem");
  const std::uint32_t page = ftl_->page_data_bytes();
  if (out.size() != page) return InvalidArgument("internal io: one page at a time");
  auto buf = std::make_shared<std::vector<std::uint8_t>>(page);
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kRead;
  cmd.slba = lpn;
  cmd.nlb = 1;
  cmd.data = buf;
  nvme::Completion cqe = SubmitInternalSync(std::move(cmd));
  COMPSTOR_RETURN_IF_ERROR(cqe.status);
  std::memcpy(out.data(), buf->data(), out.size());
  if (cost != nullptr) cost->latency += cqe.latency + ChargeInternalBus(out.size());
  else (void)ChargeInternalBus(out.size());
  return OkStatus();
}

Status Ssd::InternalWrite(std::uint64_t lpn, std::span<const std::uint8_t> data,
                          ftl::IoCost* cost) {
  if (!has_isps_path()) return Unavailable("device has no in-situ subsystem");
  const std::uint32_t page = ftl_->page_data_bytes();
  if (data.size() != page) return InvalidArgument("internal io: one page at a time");
  auto buf = std::make_shared<std::vector<std::uint8_t>>(data.begin(), data.end());
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kWrite;
  cmd.slba = lpn;
  cmd.nlb = 1;
  cmd.data = buf;
  nvme::Completion cqe = SubmitInternalSync(std::move(cmd));
  COMPSTOR_RETURN_IF_ERROR(cqe.status);
  if (cost != nullptr) cost->latency += cqe.latency + ChargeInternalBus(data.size());
  else (void)ChargeInternalBus(data.size());
  return OkStatus();
}

Status Ssd::InternalFlush(ftl::IoCost* cost) {
  if (!has_isps_path()) return Unavailable("device has no in-situ subsystem");
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kFlush;
  nvme::Completion cqe = SubmitInternalSync(std::move(cmd));
  COMPSTOR_RETURN_IF_ERROR(cqe.status);
  if (cost != nullptr) cost->latency += cqe.latency;
  return OkStatus();
}

Status Ssd::InternalScrub(std::uint64_t lpn, ftl::IoCost* cost) {
  if (!has_isps_path()) return Unavailable("device has no in-situ subsystem");
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kScrub;
  cmd.slba = lpn;
  cmd.nlb = 1;
  nvme::Completion cqe = SubmitInternalSync(std::move(cmd));
  COMPSTOR_RETURN_IF_ERROR(cqe.status);
  if (cost != nullptr) cost->latency += cqe.latency;
  return OkStatus();
}

Status Ssd::InternalTrim(std::uint64_t lpn, std::uint64_t count, ftl::IoCost* cost) {
  if (!has_isps_path()) return Unavailable("device has no in-situ subsystem");
  while (count > 0) {
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(count, kMaxNlbPerCommand));
    nvme::Command cmd;
    cmd.opcode = nvme::Opcode::kDatasetManagement;
    cmd.slba = lpn;
    cmd.nlb = chunk;
    nvme::Completion cqe = SubmitInternalSync(std::move(cmd));
    COMPSTOR_RETURN_IF_ERROR(cqe.status);
    if (cost != nullptr) cost->latency += cqe.latency;
    lpn += chunk;
    count -= chunk;
  }
  return OkStatus();
}

}  // namespace compstor::ssd
