// The assembled SSD: flash array + FTL + NVMe controller + host driver +
// the internal (ISPS-side) access path, with one energy meter per device.
//
// Host software reads/writes through `host_block_device()` (NVMe + PCIe);
// in-situ software reads/writes through `internal_block_device()` (the
// paper's flash-access device driver). Both resolve to the same FTL, so the
// two sides share one coherent view of the media.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>

#include "common/sim_clock.hpp"
#include "energy/energy.hpp"
#include "flash/array.hpp"
#include "ftl/ftl.hpp"
#include "nvme/controller.hpp"
#include "nvme/host_interface.hpp"
#include "nvme/pcie_link.hpp"
#include "ssd/block_device.hpp"
#include "ssd/profiles.hpp"
#include "telemetry/ledger.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace compstor::ssd {

class Ssd {
 public:
  explicit Ssd(const SsdProfile& profile, std::uint64_t seed = 0xC0FFEE);
  ~Ssd();

  Ssd(const Ssd&) = delete;
  Ssd& operator=(const Ssd&) = delete;

  const SsdProfile& profile() const { return profile_; }
  ftl::Ftl& ftl() { return *ftl_; }
  flash::Array& array() { return *array_; }
  nvme::Controller& controller() { return *controller_; }
  nvme::HostInterface& host_interface() { return *host_if_; }
  nvme::PcieLink& link() { return *link_; }
  energy::EnergyMeter& meter() { return meter_; }

  /// Device-wide metrics registry: every layer (flash, ftl, nvme, isps)
  /// registers its instruments here; the kStats query snapshots it.
  telemetry::Registry& telemetry() { return registry_; }
  const telemetry::Registry& telemetry() const { return registry_; }
  /// Device-wide span ring on the virtual-time axis (Chrome trace export).
  telemetry::TraceRing& trace() { return trace_; }
  /// Per-query cost/energy attribution, fed by the task runtime (compute,
  /// bytes, task energy) and the NVMe back-end (flash ops/joules of tagged
  /// commands). The kStats query exports it as "query.<id>.<field>" metrics.
  telemetry::QueryLedger& query_ledger() { return query_ledger_; }

  /// Block views (block == flash page == 4096 bytes).
  BlockDevice& host_block_device();
  BlockDevice& internal_block_device();

  bool has_isps_path() const { return profile_.internal_bandwidth_bytes_per_s > 0; }

  /// Mutex shared by every Filesystem instance mounted over this SSD (host
  /// view and ISPS view must serialize against each other).
  std::shared_ptr<std::mutex> fs_mutex() const { return fs_mutex_; }

  /// Internal-path IO used by the ISPS view: one page per command through the
  /// controller's internal submission ring (same back-end arbitration as host
  /// IO, no PCIe/overhead charges) plus the internal bus charge. Returns
  /// model latency via `cost`.
  Status InternalRead(std::uint64_t lpn, std::span<std::uint8_t> out, ftl::IoCost* cost);
  Status InternalWrite(std::uint64_t lpn, std::span<const std::uint8_t> data,
                       ftl::IoCost* cost);
  Status InternalTrim(std::uint64_t lpn, std::uint64_t count, ftl::IoCost* cost);
  /// Write barrier on the internal ring (drains the FTL write cache).
  Status InternalFlush(ftl::IoCost* cost);
  /// Media-refresh one LPN on the internal ring (kScrub; see Ftl::ScrubPage).
  Status InternalScrub(std::uint64_t lpn, ftl::IoCost* cost);

  /// Cumulative model-seconds the internal path has been busy.
  units::Seconds InternalBusySeconds() const { return internal_busy_.BusySeconds(); }

 private:
  class HostView;
  class InternalView;

  /// Submits on the internal ring and blocks on the completion callback.
  nvme::Completion SubmitInternalSync(nvme::Command cmd);
  /// Accounts one internal-bus transfer; returns its model latency.
  units::Seconds ChargeInternalBus(std::size_t bytes);

  SsdProfile profile_;
  energy::EnergyMeter meter_;
  // Declared before the subsystems: instruments registered by array/ftl/
  // controller must outlive them (members destroy in reverse order).
  telemetry::Registry registry_;
  telemetry::TraceRing trace_;
  telemetry::QueryLedger query_ledger_;
  std::unique_ptr<flash::Array> array_;
  std::unique_ptr<ftl::Ftl> ftl_;
  std::unique_ptr<nvme::PcieLink> link_;
  std::unique_ptr<nvme::Controller> controller_;
  std::unique_ptr<nvme::HostInterface> host_if_;
  std::unique_ptr<HostView> host_view_;
  std::unique_ptr<InternalView> internal_view_;
  BusyMeter internal_busy_;
  std::shared_ptr<std::mutex> fs_mutex_ = std::make_shared<std::mutex>();
};

}  // namespace compstor::ssd
