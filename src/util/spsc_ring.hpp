// Lock-free single-producer single-consumer ring buffer.
//
// Models the hardware doorbell rings between the NVMe front-end and the FTL
// back-end: exactly one producer thread and one consumer thread per ring.
// Classic Lamport ring with C++20 acquire/release atomics; head/tail on
// separate cache lines to avoid false sharing.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <utility>
#include <vector>

namespace compstor::util {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLine = std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; usable slots = capacity.
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;  // one slot is kept empty
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full.
  bool TryPush(T item) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;  // full
    slots_[head] = std::move(item);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> TryPop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T item = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return item;
  }

  bool Empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t SizeApprox() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // producer-owned
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // consumer-owned
};

}  // namespace compstor::util
