// Bit-level I/O for the compression codecs (LSB-first, DEFLATE convention).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace compstor::util {

/// Accumulates bits LSB-first into a byte vector.
class BitWriter {
 public:
  /// Writes the low `count` bits of `bits` (count <= 32).
  void WriteBits(std::uint32_t bits, int count) {
    assert(count >= 0 && count <= 32);
    acc_ |= static_cast<std::uint64_t>(bits & ((count < 32) ? ((1u << count) - 1u) : ~0u))
            << filled_;
    filled_ += count;
    while (filled_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  /// Pads with zero bits to the next byte boundary.
  void AlignToByte() {
    if (filled_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
      acc_ = 0;
      filled_ = 0;
    }
  }

  /// Byte-aligned raw copy (caller must align first).
  void WriteBytes(std::span<const std::uint8_t> bytes) {
    assert(filled_ == 0 && "WriteBytes requires byte alignment");
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }

  std::size_t BitCount() const { return out_.size() * 8 + filled_; }

  std::vector<std::uint8_t> Finish() {
    AlignToByte();
    return std::move(out_);
  }

 private:
  std::vector<std::uint8_t> out_;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

/// Reads bits LSB-first from a byte span. Reading past the end yields zero
/// bits and sets overrun() — codecs check it once per block rather than per
/// symbol.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint32_t ReadBits(int count) {
    assert(count >= 0 && count <= 32);
    while (filled_ < count) {
      if (pos_ < data_.size()) {
        acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << filled_;
        filled_ += 8;
      } else {
        overrun_ = true;
        filled_ = count;  // zero-fill
        break;
      }
    }
    const auto mask = (count < 32) ? ((1u << count) - 1u) : ~0u;
    const auto bits = static_cast<std::uint32_t>(acc_) & mask;
    acc_ >>= count;
    filled_ -= count;
    return bits;
  }

  std::uint32_t ReadBit() { return ReadBits(1); }

  void AlignToByte() {
    const int drop = filled_ % 8;
    acc_ >>= drop;
    filled_ -= drop;
  }

  /// Byte-aligned raw read; returns false on overrun.
  bool ReadBytes(std::span<std::uint8_t> out) {
    assert(filled_ % 8 == 0);
    // Drain buffered whole bytes first.
    std::size_t i = 0;
    while (filled_ > 0 && i < out.size()) {
      out[i++] = static_cast<std::uint8_t>(acc_ & 0xFF);
      acc_ >>= 8;
      filled_ -= 8;
    }
    for (; i < out.size(); ++i) {
      if (pos_ >= data_.size()) {
        overrun_ = true;
        return false;
      }
      out[i] = data_[pos_++];
    }
    return true;
  }

  bool overrun() const { return overrun_; }

  /// Bits consumed so far (including buffered-but-unread bits).
  std::size_t BitsConsumed() const { return pos_ * 8 - static_cast<std::size_t>(filled_); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
  bool overrun_ = false;
};

}  // namespace compstor::util
