// Fixed-size thread pool with a shared work queue.
//
// Backs the ISPS core emulator (one worker per emulated ARM core) and the
// host executor (one worker per emulated Xeon thread). Tasks are type-erased
// std::function<void()>; callers needing results wrap them in
// std::packaged_task / promise as usual.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/mpmc_queue.hpp"

namespace compstor::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers. `name_prefix` is informational only.
  explicit ThreadPool(std::size_t num_threads, std::string name_prefix = "worker");

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false after Shutdown().
  bool Submit(std::function<void()> task);

  /// Enqueues a callable and returns a future for its result.
  template <typename F, typename R = std::invoke_result_t<F>>
  std::future<R> Async(F&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    Submit([task]() { (*task)(); });
    return fut;
  }

  /// Stops accepting tasks, finishes queued ones, joins workers. Idempotent.
  void Shutdown();

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop(std::size_t index);

  MpmcQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::string name_prefix_;
};

}  // namespace compstor::util
