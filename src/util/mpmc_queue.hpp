// Bounded blocking MPMC queue.
//
// Used for NVMe submission/completion rings and the ISPS agent's minion
// inbox. Mutex+condvar: the emulation's contention levels (tens of threads)
// do not justify a lock-free design here, and blocking semantics (Close,
// bounded capacity back-pressure) are exactly what device queues need.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace compstor::util {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // All notifications below happen while the lock is held. Notifying after
  // unlock would be marginally faster, but it lets a peer observe the state
  // change, finish, and destroy the queue while this thread is still inside
  // the condvar call — a use-after-free under the "last pop releases the
  // queue" teardown pattern the NVMe completion path relies on.

  /// Blocks until space is available or the queue is closed.
  /// Returns false if the queue was closed (item not enqueued).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false if full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Blocking batch pop: waits for at least one item, then drains up to
  /// `max_items` in one critical section. An empty result means the queue is
  /// closed and drained. Used by completion reapers to amortize the lock and
  /// wakeup per reaped completion (the NVMe driver's "completion coalescing").
  std::vector<T> PopBatch(std::size_t max_items) {
    std::vector<T> out;
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    while (!items_.empty() && out.size() < max_items) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_all();
    return out;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: pending Pops drain remaining items then return
  /// nullopt; Pushes fail immediately.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace compstor::util
