// Software CRC32C (Castagnoli), table-driven, slice-by-1.
//
// Used by the ECC page envelope and by proto serialization to detect
// corruption across the emulated PCIe link.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace compstor::util {

/// CRC of `data`, seeded with `seed` (pass the previous CRC to continue an
/// incremental computation over chunked input).
std::uint32_t Crc32c(std::span<const std::uint8_t> data, std::uint32_t seed = 0);

inline std::uint32_t Crc32c(const void* data, std::size_t len, std::uint32_t seed = 0) {
  return Crc32c(std::span<const std::uint8_t>(static_cast<const std::uint8_t*>(data), len), seed);
}

}  // namespace compstor::util
