#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace compstor::util {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void LogHistogram::Add(double value) {
  stats_.Add(value);
  int bucket = 0;
  if (value >= 1.0) {
    bucket = std::min(kBuckets - 1, static_cast<int>(std::log2(value)) + 1);
  }
  ++buckets_[bucket];
  ++total_;
}

double LogHistogram::Quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (seen + buckets_[i] > target) {
      // Midpoint of the bucket's range as the representative value.
      const double lo = (i == 0) ? 0.0 : std::pow(2.0, i - 1);
      const double hi = std::pow(2.0, i);
      return (lo + hi) / 2.0;
    }
    seen += buckets_[i];
  }
  return stats_.max();
}

std::string LogHistogram::ToString() const {
  std::ostringstream os;
  os << "n=" << total_ << " mean=" << stats_.mean() << " p50=" << Quantile(0.5)
     << " p99=" << Quantile(0.99) << " max=" << stats_.max();
  return os.str();
}

}  // namespace compstor::util
