// Streaming statistics and fixed-bucket latency histograms for the benches.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace compstor::util {

/// Welford running mean/variance plus min/max. Single-threaded; aggregate
/// per-thread instances with Merge().
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Log-scaled histogram: bucket i covers [2^i, 2^(i+1)) in the chosen unit.
/// Suited to latency distributions spanning several orders of magnitude.
class LogHistogram {
 public:
  void Add(double value);
  std::uint64_t TotalCount() const { return total_; }
  /// Approximate quantile (q in [0,1]) via bucket interpolation.
  double Quantile(double q) const;
  std::string ToString() const;

 private:
  static constexpr int kBuckets = 64;
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
  RunningStats stats_;
};

}  // namespace compstor::util
