// Deterministic PRNG (xoshiro256**) for workload generation and failure
// injection. std::mt19937_64 is avoided on hot paths (large state, slower);
// xoshiro is 4x u64 state and passes BigCrush.
#pragma once

#include <cstdint>

namespace compstor::util {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xBF58476D1CE4E5B9ull;
      t = (t ^ (t >> 27)) * 0x94D049BB133111EBull;
      s = t ^ (t >> 31);
    }
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  std::uint64_t operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace compstor::util
