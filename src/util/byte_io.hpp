// Byte-level serialization: little-endian writer/reader over a byte vector.
//
// The proto entities (Command/Response/Minion/Query) are serialized with
// these before crossing the emulated PCIe link, so the wire format is
// explicit and byte-order independent.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace compstor::util {

class ByteWriter {
 public:
  void PutU8(std::uint8_t v) { buf_.push_back(v); }
  void PutU16(std::uint16_t v) { PutLE(v); }
  void PutU32(std::uint32_t v) { PutLE(v); }
  void PutU64(std::uint64_t v) { PutLE(v); }
  void PutI64(std::int64_t v) { PutLE(static_cast<std::uint64_t>(v)); }
  void PutF64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutLE(bits);
  }
  /// Length-prefixed (u32) string.
  void PutString(std::string_view s) {
    PutU32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// Length-prefixed (u32) blob.
  void PutBytes(std::span<const std::uint8_t> bytes) {
    PutU32(static_cast<std::uint32_t>(bytes.size()));
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }
  void PutRaw(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  template <typename T>
  void PutLE(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

/// Reader over a fixed span; every Get checks bounds and reports kOutOfRange
/// so malformed wire data never reads past the buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  Result<std::uint8_t> GetU8() { return GetLE<std::uint8_t>(); }
  Result<std::uint16_t> GetU16() { return GetLE<std::uint16_t>(); }
  Result<std::uint32_t> GetU32() { return GetLE<std::uint32_t>(); }
  Result<std::uint64_t> GetU64() { return GetLE<std::uint64_t>(); }
  Result<std::int64_t> GetI64() {
    auto r = GetLE<std::uint64_t>();
    if (!r.ok()) return r.status();
    return static_cast<std::int64_t>(*r);
  }
  Result<double> GetF64() {
    auto r = GetLE<std::uint64_t>();
    if (!r.ok()) return r.status();
    double v;
    std::uint64_t bits = *r;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  Result<std::string> GetString() {
    auto len = GetU32();
    if (!len.ok()) return len.status();
    if (remaining() < *len) return OutOfRange("string length exceeds buffer");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), *len);
    pos_ += *len;
    return s;
  }
  Result<std::vector<std::uint8_t>> GetBytes() {
    auto len = GetU32();
    if (!len.ok()) return len.status();
    if (remaining() < *len) return OutOfRange("blob length exceeds buffer");
    std::vector<std::uint8_t> v(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
    pos_ += *len;
    return v;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Result<T> GetLE() {
    if (remaining() < sizeof(T)) return OutOfRange("read past end of buffer");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace compstor::util
