#include "util/crc32c.hpp"

#include <array>

namespace compstor::util {
namespace {

// CRC32C polynomial (reflected): 0x82F63B78.
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = BuildTable();

}  // namespace

std::uint32_t Crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (std::uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace compstor::util
