#include "util/thread_pool.hpp"

#include <utility>

namespace compstor::util {

namespace {
// Deep enough that producers rarely block; bounded so a runaway producer
// exerts back-pressure instead of exhausting memory.
constexpr std::size_t kQueueDepth = 4096;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, std::string name_prefix)
    : queue_(kQueueDepth), name_prefix_(std::move(name_prefix)) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  return queue_.Push(std::move(task));
}

void ThreadPool::Shutdown() {
  queue_.Close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WorkerLoop(std::size_t /*index*/) {
  while (auto task = queue_.Pop()) {
    (*task)();
  }
}

}  // namespace compstor::util
