#include "sim/fault.hpp"

#include <algorithm>

namespace compstor::sim {

std::string_view FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kDeviceOffline: return "DEVICE_OFFLINE";
    case FaultType::kDropCommand: return "DROP_COMMAND";
    case FaultType::kDelayCompletion: return "DELAY_COMPLETION";
    case FaultType::kFailCommand: return "FAIL_COMMAND";
    case FaultType::kReadDataLoss: return "READ_DATA_LOSS";
    case FaultType::kCrashMinion: return "CRASH_MINION";
    case FaultType::kAgentUnresponsive: return "AGENT_UNRESPONSIVE";
    case FaultType::kPowerCut: return "POWER_CUT";
  }
  return "UNKNOWN";
}

FaultSite SiteOf(FaultType type) {
  switch (type) {
    case FaultType::kDeviceOffline:
    case FaultType::kDropCommand:
    case FaultType::kDelayCompletion:
    case FaultType::kFailCommand:
    case FaultType::kReadDataLoss:
      return FaultSite::kNvme;
    case FaultType::kCrashMinion:
    case FaultType::kAgentUnresponsive:
      return FaultSite::kAgent;
    case FaultType::kPowerCut:
      return FaultSite::kFlash;
  }
  return FaultSite::kNvme;
}

void FaultInjector::Schedule(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(rule);
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
  fired_.clear();
  nvme_ops_ = 0;
  agent_ops_ = 0;
  flash_ops_ = 0;
  flash_halted_ = false;
}

bool FaultInjector::RuleFires(const FaultRule& rule, std::uint64_t op, double now_s) {
  if (op < rule.first_op) return false;
  if (rule.last_op != 0 && op > rule.last_op) return false;
  if (rule.after_s >= 0 && now_s < rule.after_s) return false;
  if (rule.until_s >= 0 && now_s >= rule.until_s) return false;
  if (rule.probability < 1.0 && !rng_.Chance(rule.probability)) return false;
  return true;
}

NvmeFault FaultInjector::OnNvmeCommand(bool is_read, double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t op = ++nvme_ops_;
  for (const FaultRule& rule : rules_) {
    if (SiteOf(rule.type) != FaultSite::kNvme) continue;
    if (rule.type == FaultType::kReadDataLoss && !is_read) continue;
    if (!RuleFires(rule, op, now_s)) continue;
    fired_.push_back({rule.type, op, now_s});
    NvmeFault f;
    switch (rule.type) {
      case FaultType::kDeviceOffline:
      case FaultType::kFailCommand:
        f.action = NvmeFault::Action::kFailUnavailable;
        break;
      case FaultType::kDropCommand:
        f.action = NvmeFault::Action::kDrop;
        break;
      case FaultType::kReadDataLoss:
        f.action = NvmeFault::Action::kFailDataLoss;
        break;
      case FaultType::kDelayCompletion:
        f.action = NvmeFault::Action::kDelay;
        f.extra_latency_s = rule.extra_latency_s;
        break;
      default:
        break;
    }
    return f;
  }
  return {};
}

AgentFault FaultInjector::OnAgentOp(double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t op = ++agent_ops_;
  for (const FaultRule& rule : rules_) {
    if (SiteOf(rule.type) != FaultSite::kAgent) continue;
    if (!RuleFires(rule, op, now_s)) continue;
    fired_.push_back({rule.type, op, now_s});
    AgentFault f;
    f.action = rule.type == FaultType::kCrashMinion ? AgentFault::Action::kCrash
                                                    : AgentFault::Action::kDropResponse;
    return f;
  }
  return {};
}

bool FaultInjector::OnFlashMutation(double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (flash_halted_) return true;
  const std::uint64_t op = ++flash_ops_;
  for (const FaultRule& rule : rules_) {
    if (SiteOf(rule.type) != FaultSite::kFlash) continue;
    if (!RuleFires(rule, op, now_s)) continue;
    fired_.push_back({rule.type, op, now_s});
    flash_halted_ = true;
    return true;
  }
  return false;
}

bool FaultInjector::flash_halted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return flash_halted_;
}

void FaultInjector::RestorePower() {
  std::lock_guard<std::mutex> lock(mutex_);
  flash_halted_ = false;
}

std::vector<FiredFault> FaultInjector::Fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fired_;
}

std::uint64_t FaultInjector::FiredCount(FaultType type) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::uint64_t>(
      std::count_if(fired_.begin(), fired_.end(),
                    [type](const FiredFault& f) { return f.type == type; }));
}

std::uint64_t FaultInjector::FiredTotal() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fired_.size();
}

std::uint64_t FaultInjector::nvme_ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return nvme_ops_;
}

std::uint64_t FaultInjector::agent_ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return agent_ops_;
}

std::uint64_t FaultInjector::flash_ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return flash_ops_;
}

}  // namespace compstor::sim
