// Deterministic fault-injection framework for the emulated stack.
//
// A FaultInjector holds a scriptable schedule of FaultRules and is consulted
// by hooks in the layers that can fail on real hardware: the NVMe front-end
// (command drop / timeout / device offline / uncorrectable-ECC bursts
// surfacing as kDataLoss) and the ISPS agent + task runtime (minion crash,
// agent unresponsive). Rules fire on site-local operation indices and/or
// caller-supplied virtual time, with an optional probability evaluated
// against the injector's seeded RNG — so the same seed and the same
// submission order reproduce the identical fault sequence, which is what the
// degraded-mode experiments assert.
//
// The injector never sleeps or touches wall-clock time; a "timeout" is
// modeled by swallowing the command so the host-side deadline fires.
#pragma once

#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace compstor::sim {

enum class FaultType : std::uint8_t {
  kDeviceOffline,      // NVMe: every matching command completes kUnavailable
  kDropCommand,        // NVMe: command swallowed, no completion ever posted
  kDelayCompletion,    // NVMe: extra model latency added to the completion
  kFailCommand,        // NVMe: command completes kUnavailable (transient)
  kReadDataLoss,       // NVMe reads: completes kDataLoss (uncorrectable ECC)
  kCrashMinion,        // ISPS: in-storage process dies -> kAborted response
  kAgentUnresponsive,  // ISPS: agent never answers -> host deadline fires
  kPowerCut,           // flash: device loses power after the Nth program/erase
};

std::string_view FaultTypeName(FaultType type);

/// Which hook consults a rule of this type.
enum class FaultSite : std::uint8_t { kNvme = 0, kAgent = 1, kFlash = 2 };
FaultSite SiteOf(FaultType type);

struct FaultRule {
  FaultType type = FaultType::kFailCommand;

  /// Site-local operation window, 1-based and inclusive. `last_op == 0`
  /// means unbounded, so the defaults match every op at the rule's site.
  std::uint64_t first_op = 1;
  std::uint64_t last_op = 0;

  /// Optional virtual-time window [after_s, until_s). Negative bounds are
  /// ignored. The hook supplies its layer-local virtual time (the NVMe
  /// front-end passes accumulated command latency, the ISPS passes the core
  /// cluster makespan).
  double after_s = -1;
  double until_s = -1;

  /// Probability that a matching op actually trips the rule, drawn from the
  /// injector's seeded RNG. 1.0 = scripted/always.
  double probability = 1.0;

  /// Extra model latency for kDelayCompletion.
  double extra_latency_s = 0;
};

/// One fault that actually fired, recorded for reproducibility assertions.
struct FiredFault {
  FaultType type = FaultType::kFailCommand;
  std::uint64_t op = 0;  // site-local op index that tripped the rule
  double time_s = 0;     // caller-supplied virtual time at the hook

  friend bool operator==(const FiredFault& a, const FiredFault& b) {
    return a.type == b.type && a.op == b.op;
  }
};

/// Decision returned to the NVMe front-end for the current command.
struct NvmeFault {
  enum class Action : std::uint8_t {
    kNone,
    kDrop,
    kFailUnavailable,
    kFailDataLoss,
    kDelay,
  };
  Action action = Action::kNone;
  double extra_latency_s = 0;
};

/// Decision returned to the ISPS for the current minion/query.
struct AgentFault {
  enum class Action : std::uint8_t { kNone, kCrash, kDropResponse };
  Action action = Action::kNone;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0) : rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void Schedule(FaultRule rule);
  void Clear();

  /// NVMe front-end hook: called by the controller's arbiter once per *host*
  /// command, in arbitration order (internal ISPS-ring commands bypass the
  /// hook so a host-visible fault schedule keeps its 1-based op indices).
  /// `now_s` is the device's shared virtual timeline. `is_read` gates
  /// kReadDataLoss rules. The first matching rule in schedule order wins.
  NvmeFault OnNvmeCommand(bool is_read, double now_s);

  /// ISPS hook: called once per minion spawn (task runtime) or query
  /// (agent), in arrival order.
  AgentFault OnAgentOp(double now_s);

  /// Flash-array hook: called once per media *mutation* (page program or
  /// block erase), before the operation is applied, so a kPowerCut that
  /// fires on op N leaves exactly N-1 mutations on the media. Returns true
  /// when the device is (now) halted — the cut op and everything after it
  /// must fail without touching flash. The halt is sticky: once a power cut
  /// fires, every subsequent flash operation fails until RestorePower().
  bool OnFlashMutation(double now_s);

  /// True while a fired kPowerCut holds the device down (reads fail too:
  /// an unpowered device answers nothing).
  bool flash_halted() const;

  /// Clears the halt so a test can "plug the device back in" and remount
  /// over the same media state. Fired history and op counters are kept.
  void RestorePower();

  /// Everything that fired so far, in fire order.
  std::vector<FiredFault> Fired() const;
  std::uint64_t FiredCount(FaultType type) const;
  std::uint64_t FiredTotal() const;

  std::uint64_t nvme_ops() const;
  std::uint64_t agent_ops() const;
  std::uint64_t flash_ops() const;

 private:
  bool RuleFires(const FaultRule& rule, std::uint64_t op, double now_s);

  mutable std::mutex mutex_;
  util::Xoshiro256 rng_;
  std::vector<FaultRule> rules_;
  std::vector<FiredFault> fired_;
  std::uint64_t nvme_ops_ = 0;
  std::uint64_t agent_ops_ = 0;
  std::uint64_t flash_ops_ = 0;
  bool flash_halted_ = false;
};

}  // namespace compstor::sim
