// Dataset builder: reproduces the structure of the paper's evaluation corpus
// (§IV.B: 348 books, 11.3 GB total, individually compressed with gzip and
// bzip2) at a configurable scale, staged into a device filesystem.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "fs/filesystem.hpp"

namespace compstor::workload {

enum class StoredFormat : std::uint8_t {
  kPlain,  // book_NNN.txt
  kCzip,   // book_NNN.txt.gz  (czip container)
  kBwz,    // book_NNN.txt.bz2 (cbz container)
};

struct DatasetSpec {
  std::uint32_t num_files = 16;          // paper: 348
  std::uint64_t total_bytes = 8u << 20;  // paper: ~11.3 GB (uncompressed)
  std::uint64_t seed = 42;
  StoredFormat format = StoredFormat::kPlain;
  std::string directory = "/data";
  /// File sizes follow a log-uniform spread of about 4x around the mean,
  /// like real book collections, unless uniform is requested.
  bool uniform_sizes = false;
};

struct DatasetFile {
  std::string path;                 // where it lives in the FS
  std::uint64_t original_bytes = 0;
  std::uint64_t stored_bytes = 0;
};

struct Dataset {
  DatasetSpec spec;
  std::vector<DatasetFile> files;

  std::uint64_t TotalOriginalBytes() const {
    std::uint64_t sum = 0;
    for (const DatasetFile& f : files) sum += f.original_bytes;
    return sum;
  }
  std::uint64_t TotalStoredBytes() const {
    std::uint64_t sum = 0;
    for (const DatasetFile& f : files) sum += f.stored_bytes;
    return sum;
  }
};

/// Generates the corpus and writes it into `filesystem` under
/// spec.directory (created if needed).
Result<Dataset> BuildDataset(fs::Filesystem* filesystem, const DatasetSpec& spec);

/// Generates the corpus into memory (for host-less benches/tests).
Result<Dataset> BuildDatasetInMemory(const DatasetSpec& spec,
                                     std::vector<std::string>* contents);

}  // namespace compstor::workload
