// Zipfian item sampler for skewed-access workloads (YCSB's request
// distribution).
//
// Draws ranks in [0, n) where rank r is hit with probability proportional
// to 1/(r+1)^theta; theta=0.99 is the YCSB default ("zipfian constant").
// Sampling inverts the exact CDF by binary search over a memoized partial-sum
// table — unlike the Gray '94 closed-form approximation YCSB uses, the
// sampled frequencies match the PMF exactly (they pass a chi-square fit at
// any draw count), which the bench relies on when it derives expected
// pushdown savings from the PMF. The O(n) table is built once per (n, theta)
// and shared, so constructing one sampler per (mix, arm, device) stays cheap.
//
// Sampling is deterministic given the seed: the sampler owns its own
// Xoshiro256 stream, so two samplers with equal (n, theta, seed) produce
// identical sequences regardless of what else draws randomness — benches
// rely on this to replay the exact same key trace across compared arms.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace compstor::workload {

class ZipfDistribution {
 public:
  /// YCSB's default skew.
  static constexpr double kDefaultTheta = 0.99;

  /// `n` must be >= 1 (0 is clamped to 1). theta > 0; larger = more skewed.
  ZipfDistribution(std::uint64_t n, double theta, std::uint64_t seed);
  ZipfDistribution(std::uint64_t n, std::uint64_t seed)
      : ZipfDistribution(n, kDefaultTheta, seed) {}

  /// Next rank in [0, n). Rank 0 is the hottest item.
  std::uint64_t Next();

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Probability mass of rank `r` under this distribution (tests: expected
  /// counts for the chi-square fit; bench: predicted hot-set coverage).
  double Pmf(std::uint64_t rank) const;

 private:
  std::uint64_t n_;
  double theta_;
  /// cdf_[r] = P(rank <= r), normalized; shared across samplers over the
  /// same (n, theta).
  std::shared_ptr<const std::vector<double>> cdf_;
  util::Xoshiro256 rng_;
};

}  // namespace compstor::workload
