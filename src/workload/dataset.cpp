#include "workload/dataset.hpp"

#include <cmath>
#include <cstdio>

#include "apps/bwzip.hpp"
#include "apps/deflate.hpp"
#include "util/rng.hpp"
#include "workload/textgen.hpp"

namespace compstor::workload {
namespace {

std::string FileName(const DatasetSpec& spec, std::uint32_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "book_%03u.txt", index);
  std::string name = spec.directory + "/" + buf;
  switch (spec.format) {
    case StoredFormat::kPlain: break;
    case StoredFormat::kCzip: name += ".gz"; break;
    case StoredFormat::kBwz: name += ".bz2"; break;
  }
  return name;
}

/// Per-file sizes: log-uniform in [mean/2, 2*mean] (rescaled to hit total).
std::vector<std::uint64_t> FileSizes(const DatasetSpec& spec) {
  util::Xoshiro256 rng(spec.seed ^ 0x5151AA55u);
  std::vector<std::uint64_t> sizes(spec.num_files);
  const double mean =
      static_cast<double>(spec.total_bytes) / std::max<std::uint32_t>(1, spec.num_files);
  double sum = 0;
  for (auto& s : sizes) {
    const double factor = spec.uniform_sizes ? 1.0 : std::exp2(rng.NextDouble() * 2 - 1);
    s = static_cast<std::uint64_t>(mean * factor);
    sum += static_cast<double>(s);
  }
  // Rescale to the requested total.
  const double scale = static_cast<double>(spec.total_bytes) / sum;
  for (auto& s : sizes) {
    s = std::max<std::uint64_t>(1024, static_cast<std::uint64_t>(static_cast<double>(s) * scale));
  }
  return sizes;
}

Result<std::string> Render(const DatasetSpec& spec, std::uint32_t index,
                           std::uint64_t size, std::uint64_t* original_bytes) {
  TextGenOptions opt;
  opt.seed = spec.seed * 1000003ull + index;
  opt.approx_bytes = size;
  opt.title = "Synthetic Book Volume " + std::to_string(index);
  std::string text = GenerateBookText(opt);
  *original_bytes = text.size();

  switch (spec.format) {
    case StoredFormat::kPlain:
      return text;
    case StoredFormat::kCzip: {
      auto input = std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
      COMPSTOR_ASSIGN_OR_RETURN(std::vector<std::uint8_t> z, apps::CzipCompress(input));
      return std::string(reinterpret_cast<const char*>(z.data()), z.size());
    }
    case StoredFormat::kBwz: {
      auto input = std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
      COMPSTOR_ASSIGN_OR_RETURN(std::vector<std::uint8_t> z, apps::BwzCompress(input));
      return std::string(reinterpret_cast<const char*>(z.data()), z.size());
    }
  }
  return Internal("unreachable");
}

}  // namespace

Result<Dataset> BuildDataset(fs::Filesystem* filesystem, const DatasetSpec& spec) {
  Dataset ds;
  ds.spec = spec;
  Status st = filesystem->Mkdir(spec.directory);
  if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;

  const std::vector<std::uint64_t> sizes = FileSizes(spec);
  for (std::uint32_t i = 0; i < spec.num_files; ++i) {
    DatasetFile file;
    file.path = FileName(spec, i);
    COMPSTOR_ASSIGN_OR_RETURN(std::string stored,
                              Render(spec, i, sizes[i], &file.original_bytes));
    file.stored_bytes = stored.size();
    COMPSTOR_RETURN_IF_ERROR(filesystem->WriteFile(file.path, stored));
    ds.files.push_back(std::move(file));
  }
  return ds;
}

Result<Dataset> BuildDatasetInMemory(const DatasetSpec& spec,
                                     std::vector<std::string>* contents) {
  Dataset ds;
  ds.spec = spec;
  contents->clear();
  const std::vector<std::uint64_t> sizes = FileSizes(spec);
  for (std::uint32_t i = 0; i < spec.num_files; ++i) {
    DatasetFile file;
    file.path = FileName(spec, i);
    COMPSTOR_ASSIGN_OR_RETURN(std::string stored,
                              Render(spec, i, sizes[i], &file.original_bytes));
    file.stored_bytes = stored.size();
    contents->push_back(std::move(stored));
    ds.files.push_back(std::move(file));
  }
  return ds;
}

}  // namespace compstor::workload
