#include "workload/textgen.hpp"

#include <array>
#include <cmath>

#include "util/rng.hpp"

namespace compstor::workload {
namespace {

// ~212 common English words; Zipf sampling over this list yields text whose
// letter/word statistics are close enough to prose for compression ratios
// and search selectivity to behave realistically.
constexpr std::array<const char*, 212> kWords = {
    "the", "of", "and", "a", "to", "in", "is", "was", "he", "for",
    "it", "with", "as", "his", "on", "be", "at", "by", "had", "not",
    "are", "but", "from", "or", "have", "an", "they", "which", "one", "you",
    "were", "her", "all", "she", "there", "would", "their", "we", "him", "been",
    "has", "when", "who", "will", "more", "no", "if", "out", "so", "said",
    "what", "up", "its", "about", "into", "than", "them", "can", "only", "other",
    "new", "some", "could", "time", "these", "two", "may", "then", "do", "first",
    "any", "my", "now", "such", "like", "our", "over", "man", "me", "even",
    "most", "made", "after", "also", "did", "many", "before", "must", "through",
    "years", "where", "much", "your", "way", "well", "down", "should", "because",
    "each", "just", "those", "people", "mr", "how", "too", "little", "state",
    "good", "very", "make", "world", "still", "own", "see", "men", "work",
    "long", "get", "here", "between", "both", "life", "being", "under", "never",
    "day", "same", "another", "know", "while", "last", "might", "us", "great",
    "old", "year", "off", "come", "since", "against", "go", "came", "right",
    "used", "take", "three", "states", "himself", "few", "house", "use", "during",
    "without", "again", "place", "american", "around", "however", "home", "small",
    "found", "mrs", "thought", "went", "say", "part", "once", "general", "high",
    "upon", "school", "every", "don", "does", "got", "united", "left", "number",
    "course", "war", "until", "always", "away", "something", "fact", "though",
    "water", "less", "public", "put", "think", "almost", "hand", "enough", "far",
    "took", "head", "yet", "government", "system", "better", "set", "told",
    "nothing", "night", "end", "why", "called", "didn", "eyes", "find", "going",
};

}  // namespace

std::string GenerateBookText(const TextGenOptions& options) {
  util::Xoshiro256 rng(options.seed);
  std::string out;
  out.reserve(options.approx_bytes + 256);

  out += options.title;
  out += "\n\n";

  // Zipf(s=1.1) over the word list via inverse-CDF table.
  std::array<double, kWords.size()> cdf;
  double sum = 0;
  for (std::size_t i = 0; i < kWords.size(); ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), 1.1);
    cdf[i] = sum;
  }
  auto pick_word = [&]() -> const char* {
    const double u = rng.NextDouble() * sum;
    // Binary search the CDF.
    std::size_t lo = 0, hi = kWords.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return kWords[lo];
  };

  int chapter = 1;
  std::size_t paragraph_sentences = 0;
  std::size_t sentences_target = 4 + rng.Below(5);
  bool chapter_pending = true;

  while (out.size() < options.approx_bytes) {
    if (chapter_pending) {
      out += "CHAPTER " + std::to_string(chapter++) + "\n\n";
      chapter_pending = false;
    }
    // One sentence.
    const std::size_t words = 6 + rng.Below(16);
    for (std::size_t w = 0; w < words; ++w) {
      std::string word = pick_word();
      if (w == 0) word[0] = static_cast<char>(word[0] - 'a' + 'A');
      out += word;
      if (w + 1 < words) {
        // Occasional comma or numeral.
        if (rng.Chance(0.06)) out += ",";
        out += " ";
        if (rng.Chance(0.015)) {
          out += std::to_string(rng.Below(1900) + 100);
          out += " ";
        }
      }
    }
    out += rng.Chance(0.08) ? "!" : rng.Chance(0.1) ? "?" : ".";
    ++paragraph_sentences;
    if (paragraph_sentences >= sentences_target) {
      out += "\n\n";
      paragraph_sentences = 0;
      sentences_target = 4 + rng.Below(5);
      if (rng.Chance(0.04)) chapter_pending = true;
    } else {
      out += " ";
    }
  }
  out += "\n";
  return out;
}

}  // namespace compstor::workload
