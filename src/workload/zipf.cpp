#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <utility>

namespace compstor::workload {
namespace {

/// Normalized CDF of zipf(n, theta), memoized: the YCSB bench builds one
/// sampler per (mix, arm, device) over the same key space, and the O(n)
/// partial-sum pass should be paid once, not per sampler.
std::shared_ptr<const std::vector<double>> CdfFor(std::uint64_t n, double theta) {
  static std::mutex mutex;
  static std::map<std::pair<std::uint64_t, double>,
                  std::shared_ptr<const std::vector<double>>>
      cache;
  {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find({n, theta});
    if (it != cache.end()) return it->second;
  }
  auto cdf = std::make_shared<std::vector<double>>();
  cdf->reserve(n);
  double sum = 0;
  for (std::uint64_t r = 0; r < n; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf->push_back(sum);
  }
  for (double& v : *cdf) v /= sum;
  cdf->back() = 1.0;  // guard against rounding leaving the last bin short
  std::lock_guard<std::mutex> lock(mutex);
  return cache.emplace(std::make_pair(n, theta), std::move(cdf))
      .first->second;
}

}  // namespace

ZipfDistribution::ZipfDistribution(std::uint64_t n, double theta,
                                   std::uint64_t seed)
    : n_(n == 0 ? 1 : n), theta_(theta), cdf_(CdfFor(n_, theta)), rng_(seed) {}

std::uint64_t ZipfDistribution::Next() {
  // Exact inverse-CDF: the first rank whose cumulative mass covers u.
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_->begin(), cdf_->end(), u);
  return static_cast<std::uint64_t>(it - cdf_->begin());
}

double ZipfDistribution::Pmf(std::uint64_t rank) const {
  if (rank >= n_) return 0.0;
  const double below = rank == 0 ? 0.0 : (*cdf_)[rank - 1];
  return (*cdf_)[rank] - below;
}

}  // namespace compstor::workload
