// Synthetic book-text generator.
//
// The paper's dataset is 348 books converted to plain text (11.3 GB),
// individually compressed with gzip and bzip2. We cannot ship those books,
// so this generator produces deterministic English-like prose: Zipf-
// distributed words from a common-word list, sentence/paragraph/chapter
// structure, and occasional numerals — giving compressors realistic entropy
// (czip ~2.5-3x on this text) and search tools realistic hit rates.
#pragma once

#include <cstdint>
#include <string>

namespace compstor::workload {

struct TextGenOptions {
  std::uint64_t seed = 1;
  std::size_t approx_bytes = 64 * 1024;
  /// Title injected on the first line (grep targets often key on it).
  std::string title = "Synthetic Book";
};

/// Deterministic for a given options value.
std::string GenerateBookText(const TextGenOptions& options);

}  // namespace compstor::workload
