// Energy accounting: per-component joule meters plus the power/cost
// constants for the platforms the paper compares (Xeon host vs ISPS).
//
// The paper reports energy (J/GB) rather than power precisely so results are
// independent of the number of devices; we mirror that: every modeled action
// (CPU-seconds, link bytes, flash ops) deposits joules into a meter, and the
// benches normalize by the data volume processed.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/units.hpp"

namespace compstor::energy {

enum class Component : int {
  kCpu = 0,      // application processor (Xeon cores or ISPS A53 cluster)
  kDram,         // host DDR4 or ISPS DDR4
  kLink,         // PCIe traversal
  kFlash,        // NAND array operations
  kController,   // SSD controller logic (front-end/back-end)
  kCount,
};

std::string_view ComponentName(Component c);

/// Thread-safe joule accumulators, one per component.
class EnergyMeter {
 public:
  void AddJoules(Component c, double joules) {
    if (joules <= 0) return;
    // Nanojoule integer accumulation keeps addition atomic; 1 nJ resolution
    // still sums exactly to ~1.8e10 J, far beyond any experiment here.
    cells_[static_cast<int>(c)].fetch_add(
        static_cast<std::uint64_t>(joules * 1e9 + 0.5), std::memory_order_relaxed);
  }

  double Joules(Component c) const {
    return static_cast<double>(cells_[static_cast<int>(c)].load(std::memory_order_relaxed)) * 1e-9;
  }

  double TotalJoules() const {
    double total = 0;
    for (int i = 0; i < static_cast<int>(Component::kCount); ++i) {
      total += static_cast<double>(cells_[i].load(std::memory_order_relaxed)) * 1e-9;
    }
    return total;
  }

  void Reset() {
    for (auto& c : cells_) c.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> cells_[static_cast<int>(Component::kCount)] = {};
};

/// CPU power/performance profile. `ipc_factor` scales work throughput
/// relative to the reference core (Xeon E5 v4 core = 1.0): effective
/// cycles consumed = work_cycles / ipc_factor.
struct CpuProfile {
  std::string name;
  int cores = 1;
  double frequency_hz = 2.1e9;
  double ipc_factor = 1.0;
  double active_watts_per_core = 10.0;  // incremental power of a busy core
  /// Idle/baseline power of the whole platform hosting this CPU (server
  /// minus active cores, or the whole SSD for the ISPS). Charged by the
  /// experiment harness over the run's makespan, not per task.
  double package_idle_watts = 0.0;
  /// In-order core (A53-class): byte-stream tools lose less IPC than
  /// branchy compressors; the cost model applies per-app affinity factors.
  bool in_order = false;
  /// DRAM attached to this platform; the task runtime enforces it as the
  /// working-set budget for streamed/retained buffers (0 = unmodeled).
  std::uint64_t dram_bytes = 0;
};

/// PCIe link energy/cost.
struct LinkProfile {
  double bandwidth_bytes_per_s = 3.2e9;  // effective, e.g. PCIe gen3 x4
  double base_latency_s = 5e-6;          // per transaction
  double pj_per_byte = 450.0;            // end-to-end PCIe traversal energy
};

/// NAND + controller energy constants (per operation / per byte).
struct FlashPowerProfile {
  double read_uj_per_page = 15.0;
  double program_uj_per_page = 90.0;
  double erase_uj_per_block = 220.0;
  double channel_pj_per_byte = 25.0;       // ONFI bus transfer
  double controller_pj_per_byte = 60.0;    // ECC + DMA + firmware per byte moved
};

/// Convenience: joules for `seconds` of `n_cores` running under `profile`.
inline double CpuActiveJoules(const CpuProfile& profile, int n_cores,
                              units::Seconds seconds) {
  return profile.active_watts_per_core * n_cores * seconds;
}

}  // namespace compstor::energy
