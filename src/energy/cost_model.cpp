#include "energy/cost_model.hpp"

namespace compstor::energy {

double ReferenceCyclesPerUnit(std::string_view app_name) {
  // Cycles per uncompressed byte on the reference Xeon core, calibrated so a
  // single reference core reproduces the throughputs implied by the paper's
  // Fig 8 joules at its measured wall power (see EXPERIMENTS.md):
  //   gzip ~38 MB/s, gunzip ~350 MB/s(out), bzip2 ~19 MB/s,
  //   bunzip2 ~47 MB/s(out), grep ~320 MB/s, gawk ~210 MB/s.
  if (app_name == "gzip") return 55.0;
  if (app_name == "gunzip") return 6.0;
  if (app_name == "bzip2") return 110.0;
  if (app_name == "bunzip2") return 45.0;
  if (app_name == "grep") return 6.5;
  if (app_name == "gawk" || app_name == "awk") return 10.0;
  if (app_name == "sort") return 14.0;  // n log n comparison sort
  if (app_name == "uniq") return 2.5;
  if (app_name == "cut") return 3.5;
  if (app_name == "tr") return 1.5;
  if (app_name == "find" || app_name == "df") return 2.0;
  if (app_name == "wc") return 2.0;
  // KV engine: per record byte through memtable/sstable merge, key compare,
  // CRC verify, predicate/aggregate evaluation — heavier than a byte scan,
  // lighter than a table-driven decoder.
  if (app_name == "kv") return 8.0;
  if (app_name == "cat") return 0.6;
  if (app_name == "head" || app_name == "tail") return 1.0;
  if (app_name == "ls" || app_name == "echo") return 1.0;
  return 4.0;  // unknown commands: generic stream processing
}

double InOrderAffinity(std::string_view app_name) {
  // How much of the out-of-order IPC deficit an in-order A53 recovers per
  // app class. Byte-stream scanners (grep/gawk) run near parity per clock;
  // table-driven decompressors do well; match-finding/block-sorting
  // compressors exploit OoO the most and recover nothing.
  if (app_name == "grep" || app_name == "gawk" || app_name == "awk" ||
      app_name == "wc" || app_name == "cat") {
    return 1.8;
  }
  // Table-driven decoders keep in-order pipelines fed better than
  // match-finding/block-sorting, but their dependent loads still stall the
  // A53 more than pure byte scanning does.
  if (app_name == "gunzip" || app_name == "bunzip2") return 1.4;
  // Comparison/merge loops with dependent loads: between a byte scanner and
  // a decoder on the in-order A53.
  if (app_name == "kv") return 1.5;
  return 1.0;
}

}  // namespace compstor::energy
