#include "energy/energy.hpp"

namespace compstor::energy {

std::string_view ComponentName(Component c) {
  switch (c) {
    case Component::kCpu: return "cpu";
    case Component::kDram: return "dram";
    case Component::kLink: return "link";
    case Component::kFlash: return "flash";
    case Component::kController: return "controller";
    case Component::kCount: break;
  }
  return "unknown";
}

}  // namespace compstor::energy
