// Performance/energy cost model: converts an application's work accounting
// (compute units, IO bytes) into model seconds and joules for a given CPU
// profile and data path.
//
// Calibration (see DESIGN.md §4 and EXPERIMENTS.md):
//  - `ReferenceCyclesPerUnit` is cycles per work unit (one uncompressed byte
//    for every workload) on the reference core (Xeon E5 v4, IPC 1.0),
//    matched to the single-stream throughputs the paper's Fig 8 joules
//    imply (gzip ~38 MB/s, bzip2 ~19 MB/s, grep ~320 MB/s, ...).
//  - `InOrderAffinity` captures that an in-order A53 loses much less IPC on
//    table-driven byte-stream loops (decompression, search) than on branchy
//    match-finding/sorting (compression); the paper's per-app energy ratios
//    (1.5x for bzip2 up to 3.3x for gawk) pin these factors.
//  - Data-path energy: the host path pays the kernel block stack + FS + DRAM
//    copies per byte moved; the ISPS path pays a thin driver.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/units.hpp"
#include "energy/energy.hpp"

namespace compstor::energy {

/// Reference cycles per work unit for each workload (Xeon core, IPC 1.0).
double ReferenceCyclesPerUnit(std::string_view app_name);

/// IPC recovery factor on in-order cores (>= 1; applied on top of the
/// profile's base ipc_factor for matching app classes).
double InOrderAffinity(std::string_view app_name);

/// Cycles on the reference core, adjusted for an in-order target.
/// CostRecorder tracks both variants because per-app identity is folded in
/// at AddWork time.
inline double AdjustedCycles(std::string_view app_name, std::uint64_t units,
                             bool in_order_target) {
  const double cycles = ReferenceCyclesPerUnit(app_name) * static_cast<double>(units);
  return in_order_target ? cycles / InOrderAffinity(app_name) : cycles;
}

/// Compute seconds for pre-accumulated reference cycles on `profile`.
inline units::Seconds SecondsForCycles(double ref_cycles, const CpuProfile& profile) {
  return ref_cycles / (profile.frequency_hz * profile.ipc_factor);
}

/// Effective single-stream data rates (bytes/s). The internal path is the
/// paper's "high bandwidth, low latency" ISPS<->flash connection; the host
/// path pays NVMe queuing and PCIe sharing.
struct IoRates {
  double internal_stream = 2.5e9;
  double host_stream = 1.6e9;
};

inline units::Seconds IoSeconds(std::uint64_t bytes, bool internal_path,
                                const IoRates& rates = {}) {
  const double rate = internal_path ? rates.internal_stream : rates.host_stream;
  return static_cast<double>(bytes) / rate;
}

/// Data-path energy per byte moved (J/B): kernel block stack + filesystem +
/// DRAM staging on the host; thin flash-access driver on the ISPS.
inline constexpr double kHostDatapathJoulesPerByte = 25e-9;
inline constexpr double kInternalDatapathJoulesPerByte = 3e-9;

inline double DatapathJoules(std::uint64_t bytes_moved, bool internal_path) {
  return static_cast<double>(bytes_moved) *
         (internal_path ? kInternalDatapathJoulesPerByte : kHostDatapathJoulesPerByte);
}

}  // namespace compstor::energy
