#include "ftl/ftl.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/logging.hpp"

namespace compstor::ftl {

namespace {
IoCost g_null_cost;  // sink when the caller does not want cost accounting
}

Ftl::Ftl(flash::Array* array, FtlConfig config)
    : array_(array),
      config_(config),
      codec_(array->geometry().page_data_bytes, array->geometry().page_spare_bytes),
      user_pages_(0) {
  const flash::Geometry& g = array_->geometry();
  const std::uint64_t total_blocks = g.total_blocks();
  const auto reserved = static_cast<std::uint64_t>(config_.op_ratio * static_cast<double>(total_blocks));
  const std::uint64_t user_blocks = total_blocks - std::max<std::uint64_t>(reserved, config_.gc_high_watermark + 1);
  user_pages_ = user_blocks * g.pages_per_block;

  l2p_.assign(user_pages_, flash::kInvalidPpn);
  p2l_.assign(g.total_pages(), kUnmappedLpn);
  blocks_.assign(total_blocks, BlockInfo{});
  free_blocks_.resize(g.dies());
  for (flash::Pbn b = 0; b < total_blocks; ++b) {
    free_blocks_[DieOfBlock(b)].push_back(b);
  }
  free_block_count_ = total_blocks;
  active_block_.assign(g.dies(), kNoActive);
}

Status Ftl::ReadPage(std::uint64_t lpn, std::span<std::uint8_t> out, IoCost* cost) {
  if (cost == nullptr) cost = &g_null_cost;
  const flash::Geometry& g = array_->geometry();
  if (out.size() != g.page_data_bytes) {
    return InvalidArgument("ftl read: buffer must be one page");
  }
  if (lpn >= user_pages_) return OutOfRange("ftl read: lpn out of range");

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.host_page_reads;

  // The write cache holds the newest copy of recently written pages.
  auto cached = cache_index_.find(lpn);
  if (cached != cache_index_.end()) {
    std::memcpy(out.data(), cached->second->data.data(), out.size());
    cost->latency += kCacheLatency;
    ++stats_.cache_read_hits;
    return OkStatus();
  }

  const flash::Ppn ppn = l2p_[lpn];
  if (ppn == flash::kInvalidPpn) {
    std::memset(out.data(), 0, out.size());  // thin-provisioned zero read
    return OkStatus();
  }
  std::vector<std::uint8_t> page(array_->page_total_bytes());
  COMPSTOR_RETURN_IF_ERROR(ReadAndDecodeLocked(ppn, page, cost));
  std::memcpy(out.data(), page.data(), out.size());
  return OkStatus();
}

Status Ftl::ReadAndDecodeLocked(flash::Ppn ppn, std::span<std::uint8_t> page_buf,
                                IoCost* cost) {
  const flash::Geometry& g = array_->geometry();
  // Read retry: raw NAND bit errors are partly transient (read noise), so
  // controllers re-read before declaring a page lost.
  constexpr int kMaxAttempts = 3;
  Status last;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    flash::OpResult r = array_->ReadPage(ppn, page_buf);
    if (!r.status.ok()) return r.status;
    cost->latency += r.latency;
    ++cost->flash_reads;
    ++stats_.flash_reads;
    if (attempt > 0) ++stats_.read_retries;

    auto data = std::span<std::uint8_t>(page_buf.data(), g.page_data_bytes);
    auto spare = std::span<std::uint8_t>(page_buf.data() + g.page_data_bytes,
                                         g.page_spare_bytes);
    auto decoded = codec_.Decode(data, spare);
    if (decoded.ok()) {
      stats_.ecc_corrected_words += decoded->corrected_words;
      return OkStatus();
    }
    // kNotFound (corrupted magic) is retried too: the FTL only reads pages
    // it mapped, so the page was certainly programmed.
    last = decoded.status();
  }
  return last;
}

Status Ftl::WritePage(std::uint64_t lpn, std::span<const std::uint8_t> data, IoCost* cost) {
  if (cost == nullptr) cost = &g_null_cost;
  const flash::Geometry& g = array_->geometry();
  if (data.size() != g.page_data_bytes) {
    return InvalidArgument("ftl write: buffer must be one page");
  }
  if (lpn >= user_pages_) return OutOfRange("ftl write: lpn out of range");

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.host_page_writes;

  if (config_.write_cache_pages > 0) {
    // Fast release: stage in controller DRAM, flush on eviction. The entry
    // moves to the FIFO tail on rewrite so hot pages coalesce.
    auto it = cache_index_.find(lpn);
    if (it != cache_index_.end()) {
      it->second->data.assign(data.begin(), data.end());
      cache_fifo_.splice(cache_fifo_.end(), cache_fifo_, it->second);
    } else {
      cache_fifo_.push_back(CacheEntry{lpn, {data.begin(), data.end()}});
      cache_index_[lpn] = std::prev(cache_fifo_.end());
    }
    cost->latency += kCacheLatency;
    ++stats_.cache_write_hits;
    if (cache_fifo_.size() > config_.write_cache_pages) {
      // Evict down to 3/4 capacity so streaming writes batch their flushes.
      COMPSTOR_RETURN_IF_ERROR(
          EvictCacheLocked(config_.write_cache_pages * 3 / 4, cost));
    }
    return OkStatus();
  }
  return WritePageLocked(lpn, data, cost);
}

Status Ftl::EvictCacheLocked(std::size_t target_size, IoCost* cost) {
  while (cache_fifo_.size() > target_size) {
    CacheEntry entry = std::move(cache_fifo_.front());
    cache_fifo_.pop_front();
    cache_index_.erase(entry.lpn);
    COMPSTOR_RETURN_IF_ERROR(WritePageLocked(entry.lpn, entry.data, cost));
    ++stats_.cache_flushes;
  }
  return OkStatus();
}

Status Ftl::Flush(IoCost* cost) {
  if (cost == nullptr) cost = &g_null_cost;
  std::lock_guard<std::mutex> lock(mutex_);
  return EvictCacheLocked(0, cost);
}

Status Ftl::WritePageLocked(std::uint64_t lpn, std::span<const std::uint8_t> data,
                            IoCost* cost) {
  const flash::Geometry& g = array_->geometry();
  std::vector<std::uint8_t> page(array_->page_total_bytes());
  std::memcpy(page.data(), data.data(), g.page_data_bytes);
  COMPSTOR_RETURN_IF_ERROR(codec_.Encode(
      std::span<const std::uint8_t>(page.data(), g.page_data_bytes),
      std::span<std::uint8_t>(page.data() + g.page_data_bytes, g.page_spare_bytes)));

  // Program failures grow a bad block; retire it and retry elsewhere.
  constexpr int kMaxAttempts = 4;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    Result<flash::Ppn> ppn = in_gc_ ? AllocateGcPageLocked()
                                    : AllocatePageLocked(next_write_die_, cost);
    if (!in_gc_) next_write_die_ = (next_write_die_ + 1) % g.dies();
    if (!ppn.ok()) return ppn.status();

    flash::OpResult r = array_->ProgramPage(*ppn, page);
    cost->latency += r.latency;
    if (r.status.ok()) {
      ++cost->flash_programs;
      ++stats_.flash_programs;
      // Invalidate the previous location, then map the new one.
      if (l2p_[lpn] != flash::kInvalidPpn) InvalidatePpnLocked(l2p_[lpn]);
      l2p_[lpn] = *ppn;
      p2l_[*ppn] = lpn;
      ++blocks_[flash::BlockOfPpn(g, *ppn)].valid_pages;
      return OkStatus();
    }
    if (r.status.code() != StatusCode::kDataLoss) return r.status;
    ++stats_.program_failures;
    COMPSTOR_RETURN_IF_ERROR(RetireBlockLocked(flash::BlockOfPpn(g, *ppn), cost));
  }
  return DataLoss("ftl write: repeated program failures");
}

Status Ftl::RetireBlockLocked(flash::Pbn bad_block, IoCost* cost) {
  // Detach from every write frontier first: the block takes no more writes.
  if (gc_active_ == bad_block) gc_active_ = kNoActive;
  for (auto& active : active_block_) {
    if (active == bad_block) active = kNoActive;
  }
  BlockInfo& info = blocks_[bad_block];
  if (info.state == BlockState::kBad) return OkStatus();  // already retired
  info.state = BlockState::kBad;
  ++stats_.grown_bad_blocks;

  // Relocate surviving valid pages: the paper-class device must not lose
  // data to a grown bad block (reads still work; programs/erases do not).
  const flash::Geometry& g = array_->geometry();
  std::vector<std::uint8_t> page(array_->page_total_bytes());
  for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
    const flash::Ppn ppn = bad_block * g.pages_per_block + p;
    const std::uint64_t lpn = p2l_[ppn];
    if (lpn == kUnmappedLpn) continue;
    COMPSTOR_RETURN_IF_ERROR(ReadAndDecodeLocked(ppn, page, cost));
    COMPSTOR_RETURN_IF_ERROR(WritePageLocked(
        lpn, std::span<const std::uint8_t>(page.data(), g.page_data_bytes), cost));
    ++stats_.retirement_relocations;
  }
  return OkStatus();
}

Result<flash::Ppn> Ftl::AllocateGcPageLocked() {
  const flash::Geometry& g = array_->geometry();
  if (gc_active_ == kNoActive) {
    // Take from any die: the frontier is a single block regardless of where
    // it lives, so GC consumes at most one block of reserve at a time.
    COMPSTOR_ASSIGN_OR_RETURN(gc_active_, TakeFreeBlockLocked(0));
    blocks_[gc_active_].state = BlockState::kActive;
    blocks_[gc_active_].next_page = 0;
  }
  BlockInfo& info = blocks_[gc_active_];
  const flash::Ppn ppn = gc_active_ * g.pages_per_block + info.next_page;
  ++info.next_page;
  if (info.next_page >= g.pages_per_block) {
    // Close the frontier and DROP the reference immediately: a closed
    // frontier is a legal GC victim, and a stale gc_active_ pointing at an
    // erased-and-freed block would let GC scribble into the free pool.
    info.state = BlockState::kClosed;
    gc_active_ = kNoActive;
  }
  return ppn;
}

Result<flash::Ppn> Ftl::AllocatePageLocked(std::uint32_t die, IoCost* cost) {
  const flash::Geometry& g = array_->geometry();

  // GC before allocation when the free pool is low; relocation writes use
  // the dedicated frontier via AllocateGcPageLocked instead.
  if (!in_gc_ && free_block_count_ <= config_.gc_low_watermark) {
    COMPSTOR_RETURN_IF_ERROR(GarbageCollectLocked(cost));
  }

  flash::Pbn active = active_block_[die];
  if (active == kNoActive) {
    auto fresh = TakeFreeBlockLocked(die);
    if (!fresh.ok()) return fresh.status();
    active = *fresh;
    blocks_[active].state = BlockState::kActive;
    blocks_[active].next_page = 0;
    active_block_[die] = active;
  }
  BlockInfo& info = blocks_[active];
  const flash::Ppn ppn = active * g.pages_per_block + info.next_page;
  ++info.next_page;
  if (info.next_page >= g.pages_per_block) {
    // Close and drop the reference now (see AllocateGcPageLocked): a closed
    // block may be garbage-collected, and a stale active pointer would
    // alias a block that returned to the free pool.
    info.state = BlockState::kClosed;
    active_block_[die] = kNoActive;
  }
  return ppn;
}

Result<flash::Pbn> Ftl::TakeFreeBlockLocked(std::uint32_t die) {
  // Prefer the requested die (keeps striping even); fall back to any die.
  auto take_from = [&](std::uint32_t d) -> Result<flash::Pbn> {
    auto& pool = free_blocks_[d];
    if (pool.empty()) return ResourceExhausted("no free block on die");
    // Take the least-worn free block: cheap dynamic wear leveling.
    auto it = std::min_element(pool.begin(), pool.end(),
                               [&](flash::Pbn a, flash::Pbn b) {
                                 return blocks_[a].erase_count < blocks_[b].erase_count;
                               });
    const flash::Pbn b = *it;
    *it = pool.back();
    pool.pop_back();
    --free_block_count_;
    return b;
  };
  auto r = take_from(die);
  if (r.ok()) return r;
  for (std::uint32_t d = 0; d < free_blocks_.size(); ++d) {
    if (d == die) continue;
    r = take_from(d);
    if (r.ok()) return r;
  }
  return ResourceExhausted("ftl: no free blocks on any die");
}

Status Ftl::GarbageCollectLocked(IoCost* cost) {
  in_gc_ = true;
  ++stats_.gc_runs;
  Status result = OkStatus();
  while (free_block_count_ < config_.gc_high_watermark) {
    // Greedy victim: closed block with fewest valid pages; erase-count breaks
    // ties toward younger blocks to avoid grinding a hot block.
    flash::Pbn victim = kNoActive;
    std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
    for (flash::Pbn b = 0; b < blocks_.size(); ++b) {
      const BlockInfo& info = blocks_[b];
      if (info.state != BlockState::kClosed) continue;
      if (info.valid_pages < best_valid ||
          (info.valid_pages == best_valid && victim != kNoActive &&
           info.erase_count < blocks_[victim].erase_count)) {
        best_valid = info.valid_pages;
        victim = b;
      }
    }
    if (victim == kNoActive ||
        best_valid >= array_->geometry().pages_per_block) {
      // No reclaimable space: every closed block is fully valid.
      result = ResourceExhausted("ftl: device full, GC found no reclaimable block");
      break;
    }
    Status st = RelocateBlockLocked(victim, cost);
    if (!st.ok()) {
      result = st;
      break;
    }
  }
  MaybeWearLevelLocked(cost);
  in_gc_ = false;
  return result;
}

Status Ftl::RelocateBlockLocked(flash::Pbn victim, IoCost* cost) {
  const flash::Geometry& g = array_->geometry();
  std::vector<std::uint8_t> page(array_->page_total_bytes());

  for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
    const flash::Ppn ppn = victim * g.pages_per_block + p;
    const std::uint64_t lpn = p2l_[ppn];
    if (lpn == kUnmappedLpn) continue;  // stale page

    COMPSTOR_RETURN_IF_ERROR(ReadAndDecodeLocked(ppn, page, cost));
    auto data = std::span<std::uint8_t>(page.data(), g.page_data_bytes);
    COMPSTOR_RETURN_IF_ERROR(WritePageLocked(lpn, data, cost));
    ++stats_.gc_relocated_pages;
  }

  flash::OpResult er = array_->EraseBlock(victim);
  cost->latency += er.latency;
  if (!er.status.ok()) {
    if (er.status.code() == StatusCode::kDataLoss) {
      // Erase failure: the block is grown-bad. Its pages are already fully
      // relocated (nothing valid remains), so just retire it and move on —
      // GC continues with the next victim.
      ++stats_.erase_failures;
      BlockInfo& bad = blocks_[victim];
      if (bad.state != BlockState::kBad) {
        bad.state = BlockState::kBad;
        ++stats_.grown_bad_blocks;
      }
      bad.valid_pages = 0;
      return OkStatus();
    }
    return er.status;
  }
  ++cost->flash_erases;

  BlockInfo& info = blocks_[victim];
  info.state = BlockState::kFree;
  info.valid_pages = 0;
  info.next_page = 0;
  ++info.erase_count;
  free_blocks_[DieOfBlock(victim)].push_back(victim);
  ++free_block_count_;
  return OkStatus();
}

void Ftl::MaybeWearLevelLocked(IoCost* cost) {
  // Static wear leveling: when the wear spread exceeds the threshold, migrate
  // the coldest closed block (likely static data pinning a young block) so
  // its block rejoins the free pool.
  std::uint32_t min_ec = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t max_ec = 0;
  flash::Pbn coldest = kNoActive;
  for (flash::Pbn b = 0; b < blocks_.size(); ++b) {
    const BlockInfo& info = blocks_[b];
    min_ec = std::min(min_ec, info.erase_count);
    max_ec = std::max(max_ec, info.erase_count);
    if (info.state == BlockState::kClosed &&
        (coldest == kNoActive || info.erase_count < blocks_[coldest].erase_count)) {
      coldest = b;
    }
  }
  if (coldest == kNoActive || max_ec - min_ec <= config_.wear_delta_threshold) return;
  if (blocks_[coldest].erase_count != min_ec) return;  // coldest data already moves
  if (RelocateBlockLocked(coldest, cost).ok()) {
    ++stats_.wear_level_moves;
  }
}

void Ftl::InvalidatePpnLocked(flash::Ppn ppn) {
  p2l_[ppn] = kUnmappedLpn;
  BlockInfo& info = blocks_[flash::BlockOfPpn(array_->geometry(), ppn)];
  if (info.valid_pages > 0) --info.valid_pages;
}

Status Ftl::Trim(std::uint64_t lpn, std::uint64_t count, IoCost* cost) {
  if (cost == nullptr) cost = &g_null_cost;
  if (lpn + count > user_pages_ || lpn + count < lpn) {
    return OutOfRange("ftl trim: range out of bounds");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::uint64_t i = 0; i < count; ++i) {
    bool existed = false;
    // A trimmed page must not resurrect from the write cache.
    auto cached = cache_index_.find(lpn + i);
    if (cached != cache_index_.end()) {
      cache_fifo_.erase(cached->second);
      cache_index_.erase(cached);
      existed = true;
    }
    const flash::Ppn ppn = l2p_[lpn + i];
    if (ppn != flash::kInvalidPpn) {
      InvalidatePpnLocked(ppn);
      l2p_[lpn + i] = flash::kInvalidPpn;
      existed = true;
    }
    if (existed) ++stats_.trimmed_pages;
  }
  // Trim is a metadata operation: model a small fixed controller cost.
  cost->latency += units::usec(5);
  return OkStatus();
}

FtlStats Ftl::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  FtlStats s = stats_;
  s.free_blocks = free_block_count_;
  std::uint32_t min_ec = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t max_ec = 0;
  for (const BlockInfo& b : blocks_) {
    min_ec = std::min(min_ec, b.erase_count);
    max_ec = std::max(max_ec, b.erase_count);
  }
  s.min_erase_count = blocks_.empty() ? 0 : min_ec;
  s.max_erase_count = max_ec;
  return s;
}

}  // namespace compstor::ftl
