#include "ftl/ftl.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/logging.hpp"

namespace compstor::ftl {

namespace {
IoCost g_null_cost;  // sink when the caller does not want cost accounting
/// Program retries before a write gives up with kDataLoss (each failure
/// retires a whole block, so consecutive failures are astronomically rare on
/// healthy media and a strong end-of-life signal otherwise).
constexpr int kProgramAttempts = 4;

/// lock_guard that counts blocked acquisitions: a failed try_lock means some
/// other back-end worker holds the lock, so the caller is serialized.
class ContendedLock {
 public:
  ContendedLock(std::mutex& mutex, std::atomic<std::uint64_t>& contended)
      : mutex_(mutex) {
    if (!mutex_.try_lock()) {
      contended.fetch_add(1, std::memory_order_relaxed);
      mutex_.lock();
    }
  }
  ~ContendedLock() { mutex_.unlock(); }
  ContendedLock(const ContendedLock&) = delete;
  ContendedLock& operator=(const ContendedLock&) = delete;

 private:
  std::mutex& mutex_;
};
}  // namespace

Ftl::Ftl(flash::Array* array, FtlConfig config)
    : array_(array),
      config_(config),
      codec_(array->geometry().page_data_bytes, array->geometry().page_spare_bytes),
      user_pages_(0) {
  const flash::Geometry& g = array_->geometry();
  const std::uint64_t total_blocks = g.total_blocks();
  const auto reserved = static_cast<std::uint64_t>(config_.op_ratio * static_cast<double>(total_blocks));
  const std::uint64_t user_blocks = total_blocks - std::max<std::uint64_t>(reserved, config_.gc_high_watermark + 1);
  user_pages_ = user_blocks * g.pages_per_block;

  const std::uint32_t nshards = std::max<std::uint32_t>(1, config_.map_shards);
  shards_.reserve(nshards);
  for (std::uint32_t s = 0; s < nshards; ++s) shards_.push_back(std::make_unique<MapShard>());
  dies_.reserve(g.dies());
  for (std::uint32_t d = 0; d < g.dies(); ++d) dies_.push_back(std::make_unique<DieState>());

  l2p_ = std::vector<std::atomic<flash::Ppn>>(user_pages_);
  for (auto& e : l2p_) e.store(flash::kInvalidPpn, std::memory_order_relaxed);
  p2l_.assign(g.total_pages(), kUnmappedLpn);
  blocks_ = std::make_unique<BlockInfo[]>(total_blocks);
  for (flash::Pbn b = 0; b < total_blocks; ++b) {
    dies_[DieOfBlock(b)]->free_blocks.push_back(b);
  }
  free_block_count_.store(total_blocks, std::memory_order_relaxed);
}

Status Ftl::ReadPage(std::uint64_t lpn, std::span<std::uint8_t> out, IoCost* cost) {
  if (cost == nullptr) cost = &g_null_cost;
  const flash::Geometry& g = array_->geometry();
  if (out.size() != g.page_data_bytes) {
    return InvalidArgument("ftl read: buffer must be one page");
  }
  if (lpn >= user_pages_) return OutOfRange("ftl read: lpn out of range");

  MapShard& shard = ShardOf(lpn);
  ContendedLock lock(shard.mutex, counters_.shard_lock_contended);
  counters_.host_page_reads.fetch_add(1, std::memory_order_relaxed);

  // The write cache holds the newest copy of recently written pages.
  auto cached = shard.cache_index.find(lpn);
  if (cached != shard.cache_index.end()) {
    std::memcpy(out.data(), cached->second->data.data(), out.size());
    cost->latency += kCacheLatency;
    counters_.cache_read_hits.fetch_add(1, std::memory_order_relaxed);
    return OkStatus();
  }

  const flash::Ppn ppn = l2p_[lpn].load(std::memory_order_relaxed);
  if (ppn == flash::kInvalidPpn) {
    std::memset(out.data(), 0, out.size());  // thin-provisioned zero read
    return OkStatus();
  }
  // Holding the shard lock pins the mapping: GC must take this lock to move
  // the page, so the physical location cannot be erased under the read.
  std::vector<std::uint8_t> page(array_->page_total_bytes());
  COMPSTOR_RETURN_IF_ERROR(ReadAndDecode(ppn, page, cost));
  std::memcpy(out.data(), page.data(), out.size());
  return OkStatus();
}

Status Ftl::ReadAndDecode(flash::Ppn ppn, std::span<std::uint8_t> page_buf, IoCost* cost,
                          std::uint32_t* corrected_words) {
  const flash::Geometry& g = array_->geometry();
  // Read retry: raw NAND bit errors are partly transient (read noise), so
  // controllers re-read before declaring a page lost.
  constexpr int kMaxAttempts = 3;
  Status last;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    flash::OpResult r = array_->ReadPage(ppn, page_buf);
    if (!r.status.ok()) return r.status;
    cost->latency += r.latency;
    ++cost->flash_reads;
    counters_.flash_reads.fetch_add(1, std::memory_order_relaxed);
    if (attempt > 0) counters_.read_retries.fetch_add(1, std::memory_order_relaxed);

    auto data = std::span<std::uint8_t>(page_buf.data(), g.page_data_bytes);
    auto spare = std::span<std::uint8_t>(page_buf.data() + g.page_data_bytes,
                                         g.page_spare_bytes);
    auto decoded = codec_.Decode(data, spare);
    if (decoded.ok()) {
      counters_.ecc_corrected_words.fetch_add(decoded->corrected_words,
                                              std::memory_order_relaxed);
      if (corrected_words != nullptr) *corrected_words = decoded->corrected_words;
      return OkStatus();
    }
    // kNotFound (corrupted magic) is retried too: the FTL only reads pages
    // it mapped, so the page was certainly programmed.
    last = decoded.status();
  }
  return last;
}

Status Ftl::WritePage(std::uint64_t lpn, std::span<const std::uint8_t> data, IoCost* cost) {
  if (cost == nullptr) cost = &g_null_cost;
  const flash::Geometry& g = array_->geometry();
  if (data.size() != g.page_data_bytes) {
    return InvalidArgument("ftl write: buffer must be one page");
  }
  if (lpn >= user_pages_) return OutOfRange("ftl write: lpn out of range");
  counters_.host_page_writes.fetch_add(1, std::memory_order_relaxed);

  if (config_.write_cache_pages > 0) {
    // Fast release: stage in controller DRAM, flush on eviction. The entry
    // moves to the FIFO tail on rewrite so hot pages coalesce.
    {
      MapShard& shard = ShardOf(lpn);
      ContendedLock lock(shard.mutex, counters_.shard_lock_contended);
      auto it = shard.cache_index.find(lpn);
      if (it != shard.cache_index.end()) {
        it->second->data.assign(data.begin(), data.end());
        it->second->seq = cache_seq_.fetch_add(1, std::memory_order_relaxed);
        shard.cache_fifo.splice(shard.cache_fifo.end(), shard.cache_fifo, it->second);
      } else {
        shard.cache_fifo.push_back(
            CacheEntry{lpn, cache_seq_.fetch_add(1, std::memory_order_relaxed),
                       {data.begin(), data.end()}});
        shard.cache_index[lpn] = std::prev(shard.cache_fifo.end());
        cache_entries_.fetch_add(1, std::memory_order_relaxed);
      }
      cost->latency += kCacheLatency;
      counters_.cache_write_hits.fetch_add(1, std::memory_order_relaxed);
    }
    if (cache_entries_.load(std::memory_order_relaxed) > config_.write_cache_pages) {
      // Evict down to 3/4 capacity so streaming writes batch their flushes.
      return EvictWithGcRetry(config_.write_cache_pages * 3 / 4, cost);
    }
    return OkStatus();
  }

  // Write-through: GC before allocation when the pool is low, then retry
  // through forced collection when allocation still comes up empty.
  Status st = ResourceExhausted("ftl: no free blocks on any die");
  for (int attempt = 0; attempt < kProgramAttempts; ++attempt) {
    if (free_block_count_.load(std::memory_order_relaxed) <= config_.gc_low_watermark) {
      MaybeMaintain(cost);
    }
    {
      ContendedLock lock(ShardOf(lpn).mutex, counters_.shard_lock_contended);
      st = ProgramShardLocked(lpn, data, cost);
    }
    if (st.ok() || st.code() != StatusCode::kResourceExhausted) return st;
    COMPSTOR_RETURN_IF_ERROR(ForceCollect(cost));  // genuinely full propagates
  }
  return st;
}

Status Ftl::EncodePage(std::span<const std::uint8_t> data, std::vector<std::uint8_t>& page) {
  const flash::Geometry& g = array_->geometry();
  std::memcpy(page.data(), data.data(), g.page_data_bytes);
  return codec_.Encode(
      std::span<const std::uint8_t>(page.data(), g.page_data_bytes),
      std::span<std::uint8_t>(page.data() + g.page_data_bytes, g.page_spare_bytes));
}

Status Ftl::ProgramShardLocked(std::uint64_t lpn, std::span<const std::uint8_t> data,
                               IoCost* cost) {
  std::vector<std::uint8_t> page(array_->page_total_bytes());
  COMPSTOR_RETURN_IF_ERROR(EncodePage(data, page));
  COMPSTOR_ASSIGN_OR_RETURN(const flash::Ppn ppn, ProgramAnywhere(lpn, page, cost));
  // Map the new location, then invalidate the previous one. The shard lock
  // makes the pair atomic for readers and GC.
  const flash::Ppn old = l2p_[lpn].load(std::memory_order_relaxed);
  l2p_[lpn].store(ppn, std::memory_order_release);
  if (old != flash::kInvalidPpn) InvalidatePpn(old);
  return OkStatus();
}

Result<flash::Ppn> Ftl::ProgramAnywhere(std::uint64_t lpn,
                                        std::span<const std::uint8_t> page, IoCost* cost) {
  const flash::Geometry& g = array_->geometry();
  const auto ndies = static_cast<std::uint32_t>(dies_.size());
  const std::uint32_t start =
      next_write_die_.fetch_add(1, std::memory_order_relaxed) % ndies;
  int failures = 0;
  std::uint32_t offset = 0;
  while (offset < ndies) {
    const std::uint32_t d = (start + offset) % ndies;
    DieState& die = *dies_[d];
    ContendedLock lock(die.mutex, counters_.die_lock_contended);
    if (die.active == kNoActive) {
      die.active = TakeFreeBlockDieLocked(die, /*for_gc=*/false);
      if (die.active == kNoActive) {
        ++offset;  // die exhausted (or only the GC reserve remains)
        continue;
      }
    }
    const flash::Pbn block = die.active;
    BlockInfo& info = blocks_[block];
    const flash::Ppn ppn = block * g.pages_per_block + info.next_page;
    ++info.next_page;
    const bool frontier_full = info.next_page >= g.pages_per_block;

    // The die lock is held across the program — a die works one page at a
    // time — and across the p2l/valid update, so GC never sees a programmed
    // page without its reverse mapping.
    flash::OpResult r = array_->ProgramPage(ppn, page);
    cost->latency += r.latency;
    if (r.status.ok()) {
      ++cost->flash_programs;
      counters_.flash_programs.fetch_add(1, std::memory_order_relaxed);
      p2l_[ppn] = lpn;
      info.valid_pages.fetch_add(1, std::memory_order_relaxed);
      if (frontier_full) {
        // Close and detach immediately: a closed block is a legal GC victim,
        // and a stale frontier pointer would alias a recycled block.
        info.state.store(BlockState::kClosed, std::memory_order_release);
        die.active = kNoActive;
      }
      return ppn;
    }
    if (r.status.code() != StatusCode::kDataLoss) {
      // Transport-level failure (e.g. power cut): the page was never touched,
      // so undo the frontier advance — leaving next_page ahead of the flash
      // write pointer would make every post-recovery program on this block an
      // out-of-order violation. The die lock is still held.
      --info.next_page;
      return r.status;
    }
    // Program failure grows a bad block. Retire it (valid pages relocate on
    // the next maintenance pass; reads still work meanwhile) and retry on
    // this die, which may open a fresh block.
    counters_.program_failures.fetch_add(1, std::memory_order_relaxed);
    die.active = kNoActive;
    MarkBadQueueRetire(block);
    if (++failures >= kProgramAttempts) {
      return DataLoss("ftl write: repeated program failures");
    }
  }
  return ResourceExhausted("ftl: no free blocks on any die");
}

flash::Pbn Ftl::TakeFreeBlockDieLocked(DieState& die, bool for_gc) {
  if (die.free_blocks.empty()) return kNoActive;
  if (for_gc) {
    free_block_count_.fetch_sub(1, std::memory_order_relaxed);
  } else {
    // Leave the reserve for the GC frontier; CAS so concurrent writers on
    // different dies cannot jointly drain past it.
    std::uint64_t cur = free_block_count_.load(std::memory_order_relaxed);
    do {
      if (cur <= kGcReserveBlocks) return kNoActive;
    } while (!free_block_count_.compare_exchange_weak(cur, cur - 1,
                                                      std::memory_order_relaxed));
  }
  // Take the least-worn free block: cheap dynamic wear leveling.
  auto it = std::min_element(die.free_blocks.begin(), die.free_blocks.end(),
                             [&](flash::Pbn a, flash::Pbn b) {
                               return blocks_[a].erase_count.load(std::memory_order_relaxed) <
                                      blocks_[b].erase_count.load(std::memory_order_relaxed);
                             });
  const flash::Pbn b = *it;
  *it = die.free_blocks.back();
  die.free_blocks.pop_back();
  BlockInfo& info = blocks_[b];
  info.state.store(BlockState::kActive, std::memory_order_relaxed);
  info.next_page = 0;
  return b;
}

void Ftl::MarkBadQueueRetire(flash::Pbn block) {
  BlockInfo& info = blocks_[block];
  if (info.state.exchange(BlockState::kBad, std::memory_order_acq_rel) ==
      BlockState::kBad) {
    return;  // already retired
  }
  counters_.grown_bad_blocks.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(retire_mutex_);
    pending_retire_.push_back(block);
  }
  pending_retire_count_.fetch_add(1, std::memory_order_release);
}

void Ftl::MaybeMaintain(IoCost* cost) {
  ContendedLock lock(maintenance_mutex_, counters_.maintenance_lock_contended);
  DrainRetirementsLocked(cost);
  if (free_block_count_.load(std::memory_order_relaxed) <= config_.gc_low_watermark) {
    // Error swallowed on purpose: the caller's allocation decides whether
    // the write fails, so a transiently unreclaimable pool is not an error.
    (void)CollectLocked(cost);
  }
}

Status Ftl::ForceCollect(IoCost* cost) {
  ContendedLock lock(maintenance_mutex_, counters_.maintenance_lock_contended);
  DrainRetirementsLocked(cost);
  return CollectLocked(cost);
}

Status Ftl::CollectLocked(IoCost* cost) {
  const flash::Geometry& g = array_->geometry();
  if (free_block_count_.load(std::memory_order_relaxed) >= config_.gc_high_watermark) {
    return OkStatus();  // another thread already collected while we waited
  }
  counters_.gc_runs.fetch_add(1, std::memory_order_relaxed);
  Status result = OkStatus();
  while (free_block_count_.load(std::memory_order_relaxed) < config_.gc_high_watermark) {
    // Greedy victim: closed block with fewest valid pages; erase-count breaks
    // ties toward younger blocks to avoid grinding a hot block.
    flash::Pbn victim = kNoActive;
    std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
    for (flash::Pbn b = 0; b < g.total_blocks(); ++b) {
      const BlockInfo& info = blocks_[b];
      if (info.state.load(std::memory_order_acquire) != BlockState::kClosed) continue;
      const std::uint32_t valid = info.valid_pages.load(std::memory_order_relaxed);
      if (valid < best_valid ||
          (valid == best_valid && victim != kNoActive &&
           info.erase_count.load(std::memory_order_relaxed) <
               blocks_[victim].erase_count.load(std::memory_order_relaxed))) {
        best_valid = valid;
        victim = b;
      }
    }
    if (victim == kNoActive || best_valid >= g.pages_per_block) {
      // No reclaimable space: every closed block is fully valid.
      result = ResourceExhausted("ftl: device full, GC found no reclaimable block");
      break;
    }
    Status st = RelocateAndErase(victim, /*erase_after=*/true,
                                 &counters_.gc_relocated_pages, cost);
    if (!st.ok()) {
      result = st;
      break;
    }
  }
  MaybeWearLevelLocked(cost);
  return result;
}

Status Ftl::RelocateAndErase(flash::Pbn victim, bool erase_after,
                             std::atomic<std::uint64_t>* relocation_counter,
                             IoCost* cost) {
  const flash::Geometry& g = array_->geometry();
  DieState& vdie = *dies_[DieOfBlock(victim)];
  std::vector<std::uint8_t> page(array_->page_total_bytes());

  // A victim is kClosed or kBad, so no new valid pages can appear; host
  // overwrites may still invalidate pages concurrently (fine — fewer to
  // move). One pass normally empties the block; the re-check catches a
  // page whose mapping flipped between the p2l read and the shard lock.
  int rounds = 0;
  while (blocks_[victim].valid_pages.load(std::memory_order_acquire) > 0 &&
         rounds++ < kProgramAttempts) {
    for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
      const flash::Ppn ppn = victim * g.pages_per_block + p;
      std::uint64_t lpn;
      {
        ContendedLock die_lock(vdie.mutex, counters_.die_lock_contended);
        lpn = p2l_[ppn];
      }
      if (lpn == kUnmappedLpn) continue;  // stale page

      ContendedLock shard_lock(ShardOf(lpn).mutex, counters_.shard_lock_contended);
      if (l2p_[lpn].load(std::memory_order_relaxed) != ppn) {
        continue;  // overwritten or trimmed since; already invalidated
      }
      COMPSTOR_RETURN_IF_ERROR(ReadAndDecode(ppn, page, cost));
      auto data = std::span<const std::uint8_t>(page.data(), g.page_data_bytes);
      COMPSTOR_ASSIGN_OR_RETURN(const flash::Ppn np, ProgramGcPage(lpn, data, cost));
      l2p_[lpn].store(np, std::memory_order_release);
      InvalidatePpn(ppn);
      relocation_counter->fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!erase_after) return OkStatus();  // grown-bad block: drained, not erasable

  ContendedLock die_lock(vdie.mutex, counters_.die_lock_contended);
  flash::OpResult er = array_->EraseBlock(victim);
  cost->latency += er.latency;
  if (!er.status.ok()) {
    if (er.status.code() == StatusCode::kDataLoss) {
      // Erase failure: the block is grown-bad. Its pages are already fully
      // relocated (nothing valid remains), so just retire it and move on —
      // GC continues with the next victim.
      counters_.erase_failures.fetch_add(1, std::memory_order_relaxed);
      BlockInfo& bad = blocks_[victim];
      if (bad.state.exchange(BlockState::kBad, std::memory_order_acq_rel) !=
          BlockState::kBad) {
        counters_.grown_bad_blocks.fetch_add(1, std::memory_order_relaxed);
      }
      bad.valid_pages.store(0, std::memory_order_relaxed);
      return OkStatus();
    }
    return er.status;
  }
  ++cost->flash_erases;

  BlockInfo& info = blocks_[victim];
  info.state.store(BlockState::kFree, std::memory_order_relaxed);
  info.valid_pages.store(0, std::memory_order_relaxed);
  info.next_page = 0;
  info.erase_count.fetch_add(1, std::memory_order_relaxed);
  vdie.free_blocks.push_back(victim);
  free_block_count_.fetch_add(1, std::memory_order_release);
  return OkStatus();
}

Result<flash::Ppn> Ftl::ProgramGcPage(std::uint64_t lpn,
                                      std::span<const std::uint8_t> page_data,
                                      IoCost* cost) {
  const flash::Geometry& g = array_->geometry();
  std::vector<std::uint8_t> page(array_->page_total_bytes());
  COMPSTOR_RETURN_IF_ERROR(EncodePage(page_data, page));

  for (int failures = 0; failures < kProgramAttempts;) {
    if (gc_active_ == kNoActive) {
      // Take from any die: the frontier is a single block regardless of where
      // it lives, so GC consumes at most one block of reserve at a time.
      for (auto& die : dies_) {
        ContendedLock lock(die->mutex, counters_.die_lock_contended);
        const flash::Pbn b = TakeFreeBlockDieLocked(*die, /*for_gc=*/true);
        if (b != kNoActive) {
          gc_active_ = b;
          break;
        }
      }
      if (gc_active_ == kNoActive) {
        return ResourceExhausted("ftl gc: no free block for the relocation frontier");
      }
    }
    const flash::Pbn block = gc_active_;
    DieState& die = *dies_[DieOfBlock(block)];
    ContendedLock lock(die.mutex, counters_.die_lock_contended);
    BlockInfo& info = blocks_[block];
    const flash::Ppn ppn = block * g.pages_per_block + info.next_page;
    ++info.next_page;
    const bool frontier_full = info.next_page >= g.pages_per_block;

    flash::OpResult r = array_->ProgramPage(ppn, page);
    cost->latency += r.latency;
    if (r.status.ok()) {
      ++cost->flash_programs;
      counters_.flash_programs.fetch_add(1, std::memory_order_relaxed);
      p2l_[ppn] = lpn;
      info.valid_pages.fetch_add(1, std::memory_order_relaxed);
      if (frontier_full) {
        // Close and DROP the reference immediately: a closed frontier is a
        // legal GC victim, and a stale gc_active_ pointing at an erased-and-
        // freed block would let GC scribble into the free pool.
        info.state.store(BlockState::kClosed, std::memory_order_release);
        gc_active_ = kNoActive;
      }
      return ppn;
    }
    if (r.status.code() != StatusCode::kDataLoss) {
      // Same rollback as ProgramAnywhere: a transport failure never programs
      // the page, so the relocation frontier must not advance past it.
      --info.next_page;
      return r.status;
    }
    counters_.program_failures.fetch_add(1, std::memory_order_relaxed);
    gc_active_ = kNoActive;
    MarkBadQueueRetire(block);
    ++failures;
  }
  return DataLoss("ftl gc: repeated program failures");
}

void Ftl::MaybeWearLevelLocked(IoCost* cost) {
  // Static wear leveling: when the wear spread exceeds the threshold, migrate
  // the coldest closed block (likely static data pinning a young block) so
  // its block rejoins the free pool.
  const flash::Geometry& g = array_->geometry();
  std::uint32_t min_ec = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t max_ec = 0;
  flash::Pbn coldest = kNoActive;
  for (flash::Pbn b = 0; b < g.total_blocks(); ++b) {
    const BlockInfo& info = blocks_[b];
    const std::uint32_t ec = info.erase_count.load(std::memory_order_relaxed);
    min_ec = std::min(min_ec, ec);
    max_ec = std::max(max_ec, ec);
    if (info.state.load(std::memory_order_acquire) == BlockState::kClosed &&
        (coldest == kNoActive ||
         ec < blocks_[coldest].erase_count.load(std::memory_order_relaxed))) {
      coldest = b;
    }
  }
  if (coldest == kNoActive || max_ec - min_ec <= config_.wear_delta_threshold) return;
  if (blocks_[coldest].erase_count.load(std::memory_order_relaxed) != min_ec) {
    return;  // coldest data already moves
  }
  if (RelocateAndErase(coldest, /*erase_after=*/true, &counters_.gc_relocated_pages,
                       cost)
          .ok()) {
    counters_.wear_level_moves.fetch_add(1, std::memory_order_relaxed);
  }
}

void Ftl::DrainRetirementsLocked(IoCost* cost) {
  if (pending_retire_count_.load(std::memory_order_acquire) == 0) return;
  std::vector<flash::Pbn> todo;
  {
    std::lock_guard<std::mutex> lock(retire_mutex_);
    todo.swap(pending_retire_);
    pending_retire_count_.fetch_sub(todo.size(), std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < todo.size(); ++i) {
    // Relocate surviving valid pages: the paper-class device must not lose
    // data to a grown bad block (reads still work; programs/erases do not).
    Status st = RelocateAndErase(todo[i], /*erase_after=*/false,
                                 &counters_.retirement_relocations, cost);
    if (!st.ok()) {
      // Out of space (or worse): requeue what's left. The data stays readable
      // on the bad block, so deferring costs nothing but another attempt.
      std::lock_guard<std::mutex> lock(retire_mutex_);
      pending_retire_.insert(pending_retire_.end(), todo.begin() + i, todo.end());
      pending_retire_count_.fetch_add(todo.size() - i, std::memory_order_release);
      return;
    }
  }
}

void Ftl::InvalidatePpn(flash::Ppn ppn) {
  const flash::Pbn block = flash::BlockOfPpn(array_->geometry(), ppn);
  DieState& die = *dies_[DieOfBlock(block)];
  std::lock_guard<std::mutex> lock(die.mutex);
  p2l_[ppn] = kUnmappedLpn;
  BlockInfo& info = blocks_[block];
  if (info.valid_pages.load(std::memory_order_relaxed) > 0) {
    info.valid_pages.fetch_sub(1, std::memory_order_relaxed);
  }
}

Status Ftl::EvictWithGcRetry(std::size_t target, IoCost* cost) {
  // One evictor at a time: eviction order is global-FIFO and a single drain
  // writes enough to amortize; other writers just stage and move on.
  std::lock_guard<std::mutex> evict_lock(cache_evict_mutex_);
  int stalls = 0;
  while (cache_entries_.load(std::memory_order_relaxed) > target) {
    if (free_block_count_.load(std::memory_order_relaxed) <= config_.gc_low_watermark) {
      MaybeMaintain(cost);  // keep watermark pacing during long flushes
    }
    // Globally-oldest entry = smallest seq across the shard FIFO fronts.
    std::size_t best = shards_.size();
    std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      ContendedLock lock(shards_[s]->mutex, counters_.shard_lock_contended);
      if (!shards_[s]->cache_fifo.empty() &&
          shards_[s]->cache_fifo.front().seq < best_seq) {
        best_seq = shards_[s]->cache_fifo.front().seq;
        best = s;
      }
    }
    if (best == shards_.size()) break;  // drained underneath us (trim race)

    Status st;
    {
      MapShard& shard = *shards_[best];
      ContendedLock lock(shard.mutex, counters_.shard_lock_contended);
      if (shard.cache_fifo.empty()) continue;
      CacheEntry entry = std::move(shard.cache_fifo.front());
      shard.cache_fifo.pop_front();
      shard.cache_index.erase(entry.lpn);
      st = ProgramShardLocked(entry.lpn, entry.data, cost);
      if (st.ok()) {
        cache_entries_.fetch_sub(1, std::memory_order_relaxed);
        counters_.cache_flushes.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Put it back where it was; a trimmed-meanwhile page cannot be here
        // (trim takes the same shard lock), so reinsertion is always safe.
        shard.cache_fifo.push_front(std::move(entry));
        shard.cache_index[shard.cache_fifo.front().lpn] = shard.cache_fifo.begin();
      }
    }
    if (st.ok()) {
      stalls = 0;
      continue;
    }
    if (st.code() != StatusCode::kResourceExhausted || ++stalls > kProgramAttempts) {
      return st;
    }
    COMPSTOR_RETURN_IF_ERROR(ForceCollect(cost));
  }
  return OkStatus();
}

Status Ftl::Flush(IoCost* cost) {
  if (cost == nullptr) cost = &g_null_cost;
  return EvictWithGcRetry(0, cost);
}

Status Ftl::ScrubPage(std::uint64_t lpn, IoCost* cost) {
  if (cost == nullptr) cost = &g_null_cost;
  if (lpn >= user_pages_) return OutOfRange("ftl scrub: lpn out of range");

  MapShard& shard = ShardOf(lpn);
  ContendedLock lock(shard.mutex, counters_.shard_lock_contended);
  // A cached page's authoritative copy lives in controller DRAM — the stale
  // media copy gets overwritten at eviction, so there is nothing to refresh.
  if (shard.cache_index.find(lpn) != shard.cache_index.end()) return OkStatus();
  const flash::Ppn ppn = l2p_[lpn].load(std::memory_order_relaxed);
  if (ppn == flash::kInvalidPpn) return OkStatus();
  counters_.scrubbed_pages.fetch_add(1, std::memory_order_relaxed);

  std::vector<std::uint8_t> page(array_->page_total_bytes());
  std::uint32_t corrected = 0;
  Status st = ReadAndDecode(ppn, page, cost, &corrected);
  if (st.ok()) {
    if (corrected == 0) return OkStatus();  // pristine; leave it in place
    // The codec had to work: raw flips are accumulating on this page. Rewrite
    // it somewhere fresh before they cross the correction horizon.
    counters_.scrub_refreshed.fetch_add(1, std::memory_order_relaxed);
    auto data = std::span<const std::uint8_t>(page.data(),
                                              array_->geometry().page_data_bytes);
    return ProgramShardLocked(lpn, data, cost);
  }
  if (st.code() != StatusCode::kDataLoss && st.code() != StatusCode::kNotFound) {
    return st;  // transport-level failure (e.g. power cut), not a media verdict
  }

  // Uncorrectable after retries: the logical content is gone. Unmap it FIRST
  // (retirement relocates only still-valid pages — a mapped uncorrectable
  // page would wedge the retirement queue on its own read error), then retire
  // the block when it is closed. An active frontier block is skipped: pulling
  // a die's live frontier into the retirement path would recycle a block the
  // die still appends to; a later scrub pass retires it once closed.
  counters_.scrub_uncorrectable.fetch_add(1, std::memory_order_relaxed);
  l2p_[lpn].store(flash::kInvalidPpn, std::memory_order_release);
  InvalidatePpn(ppn);
  const flash::Pbn pbn = flash::BlockOfPpn(array_->geometry(), ppn);
  BlockInfo& info = blocks_[pbn];
  BlockState expected = BlockState::kClosed;
  if (info.state.compare_exchange_strong(expected, BlockState::kBad,
                                         std::memory_order_acq_rel)) {
    counters_.grown_bad_blocks.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> retire_lock(retire_mutex_);
      pending_retire_.push_back(pbn);
    }
    pending_retire_count_.fetch_add(1, std::memory_order_release);
  }
  return DataLoss("scrub: lpn " + std::to_string(lpn) + " uncorrectable, unmapped");
}

Result<flash::Ppn> Ftl::LookupPpn(std::uint64_t lpn) const {
  if (lpn >= user_pages_) return OutOfRange("ftl lookup: lpn out of range");
  const flash::Ppn ppn = l2p_[lpn].load(std::memory_order_acquire);
  if (ppn == flash::kInvalidPpn) return NotFound("ftl lookup: lpn unmapped");
  return ppn;
}

Status Ftl::Trim(std::uint64_t lpn, std::uint64_t count, IoCost* cost) {
  if (cost == nullptr) cost = &g_null_cost;
  if (lpn + count > user_pages_ || lpn + count < lpn) {
    return OutOfRange("ftl trim: range out of bounds");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t cur = lpn + i;
    MapShard& shard = ShardOf(cur);
    ContendedLock lock(shard.mutex, counters_.shard_lock_contended);
    bool existed = false;
    // A trimmed page must not resurrect from the write cache.
    auto cached = shard.cache_index.find(cur);
    if (cached != shard.cache_index.end()) {
      shard.cache_fifo.erase(cached->second);
      shard.cache_index.erase(cached);
      cache_entries_.fetch_sub(1, std::memory_order_relaxed);
      existed = true;
    }
    const flash::Ppn ppn = l2p_[cur].load(std::memory_order_relaxed);
    if (ppn != flash::kInvalidPpn) {
      l2p_[cur].store(flash::kInvalidPpn, std::memory_order_release);
      InvalidatePpn(ppn);
      existed = true;
    }
    if (existed) counters_.trimmed_pages.fetch_add(1, std::memory_order_relaxed);
  }
  // Trim is a metadata operation: model a small fixed controller cost.
  cost->latency += units::usec(5);
  return OkStatus();
}

FtlStats Ftl::Stats() const {
  const auto load = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  FtlStats s;
  s.host_page_writes = load(counters_.host_page_writes);
  s.host_page_reads = load(counters_.host_page_reads);
  s.flash_programs = load(counters_.flash_programs);
  s.flash_reads = load(counters_.flash_reads);
  s.gc_runs = load(counters_.gc_runs);
  s.gc_relocated_pages = load(counters_.gc_relocated_pages);
  s.wear_level_moves = load(counters_.wear_level_moves);
  s.trimmed_pages = load(counters_.trimmed_pages);
  s.ecc_corrected_words = load(counters_.ecc_corrected_words);
  s.read_retries = load(counters_.read_retries);
  s.program_failures = load(counters_.program_failures);
  s.erase_failures = load(counters_.erase_failures);
  s.grown_bad_blocks = load(counters_.grown_bad_blocks);
  s.retirement_relocations = load(counters_.retirement_relocations);
  s.cache_write_hits = load(counters_.cache_write_hits);
  s.cache_read_hits = load(counters_.cache_read_hits);
  s.cache_flushes = load(counters_.cache_flushes);
  s.scrubbed_pages = load(counters_.scrubbed_pages);
  s.scrub_refreshed = load(counters_.scrub_refreshed);
  s.scrub_uncorrectable = load(counters_.scrub_uncorrectable);
  s.shard_lock_contended = load(counters_.shard_lock_contended);
  s.die_lock_contended = load(counters_.die_lock_contended);
  s.maintenance_lock_contended = load(counters_.maintenance_lock_contended);
  s.free_blocks = free_block_count_.load(std::memory_order_relaxed);
  const std::uint64_t total_blocks = array_->geometry().total_blocks();
  std::uint32_t min_ec = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t max_ec = 0;
  for (flash::Pbn b = 0; b < total_blocks; ++b) {
    const std::uint32_t ec = blocks_[b].erase_count.load(std::memory_order_relaxed);
    min_ec = std::min(min_ec, ec);
    max_ec = std::max(max_ec, ec);
  }
  s.min_erase_count = total_blocks == 0 ? 0 : min_ec;
  s.max_erase_count = max_ec;
  return s;
}

void Ftl::RegisterMetrics(telemetry::Registry* registry) {
  if (registry == nullptr) return;
  const auto probe = [registry](std::string_view name,
                                const std::atomic<std::uint64_t>& counter) {
    registry->RegisterProbe(name, telemetry::MetricKind::kCounter, [&counter] {
      return static_cast<double>(counter.load(std::memory_order_relaxed));
    });
  };
  probe("ftl.host_page_reads", counters_.host_page_reads);
  probe("ftl.host_page_writes", counters_.host_page_writes);
  probe("ftl.flash_reads", counters_.flash_reads);
  probe("ftl.flash_programs", counters_.flash_programs);
  probe("ftl.gc.runs", counters_.gc_runs);
  probe("ftl.gc.relocations", counters_.gc_relocated_pages);
  probe("ftl.wear_level_moves", counters_.wear_level_moves);
  probe("ftl.trimmed_pages", counters_.trimmed_pages);
  probe("ftl.ecc_corrected_words", counters_.ecc_corrected_words);
  probe("ftl.read_retries", counters_.read_retries);
  probe("ftl.program_failures", counters_.program_failures);
  probe("ftl.erase_failures", counters_.erase_failures);
  probe("ftl.grown_bad_blocks", counters_.grown_bad_blocks);
  probe("ftl.retirement_relocations", counters_.retirement_relocations);
  probe("ftl.cache.write_hits", counters_.cache_write_hits);
  probe("ftl.cache.read_hits", counters_.cache_read_hits);
  probe("ftl.cache.flushes", counters_.cache_flushes);
  probe("ftl.scrub.pages", counters_.scrubbed_pages);
  probe("ftl.scrub.refreshed", counters_.scrub_refreshed);
  probe("ftl.scrub.uncorrectable", counters_.scrub_uncorrectable);
  probe("ftl.lock.shard_contended", counters_.shard_lock_contended);
  probe("ftl.lock.die_contended", counters_.die_lock_contended);
  probe("ftl.lock.maintenance_contended", counters_.maintenance_lock_contended);
  registry->RegisterProbe("ftl.free_blocks", telemetry::MetricKind::kGauge, [this] {
    return static_cast<double>(free_block_count_.load(std::memory_order_relaxed));
  });
  registry->RegisterProbe("ftl.cache.entries", telemetry::MetricKind::kGauge, [this] {
    return static_cast<double>(cache_entries_.load(std::memory_order_relaxed));
  });
}

}  // namespace compstor::ftl
