// Page-mapped flash translation layer with greedy garbage collection, wear
// leveling, and trim — the "SSD controller software" of the paper's Fig 4.
//
// Writes stripe across dies round-robin (one active block per die) to exploit
// channel parallelism; reads route through the page codec so every user read
// exercises ECC decode. All metadata is guarded by one mutex: the functional
// emulation's flash ops are memory copies, so fine-grained locking would buy
// nothing, while virtual-time parallelism is preserved by the per-die clocks.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "ecc/page_codec.hpp"
#include "flash/array.hpp"

namespace compstor::ftl {

struct FtlConfig {
  /// Fraction of raw blocks reserved as over-provisioning.
  double op_ratio = 0.125;
  /// GC starts when free blocks drop to this count...
  std::uint32_t gc_low_watermark = 3;
  /// ...and runs until this many blocks are free again.
  std::uint32_t gc_high_watermark = 6;
  /// Static wear leveling kicks in when (max-min) erase count exceeds this.
  std::uint32_t wear_delta_threshold = 64;
  /// Pages of RAM write cache — the paper's "fast-release host data buffer".
  /// Writes complete at buffer speed and flush to NAND on eviction or an
  /// explicit Flush(). 0 disables the cache (write-through).
  std::uint32_t write_cache_pages = 0;
};

/// Model cost of one FTL operation (latency plus op counts for energy).
struct IoCost {
  units::Seconds latency = 0;
  std::uint64_t flash_reads = 0;
  std::uint64_t flash_programs = 0;
  std::uint64_t flash_erases = 0;

  void Add(const IoCost& o) {
    latency += o.latency;
    flash_reads += o.flash_reads;
    flash_programs += o.flash_programs;
    flash_erases += o.flash_erases;
  }
};

struct FtlStats {
  std::uint64_t host_page_writes = 0;
  std::uint64_t host_page_reads = 0;
  std::uint64_t flash_programs = 0;   // includes GC relocation
  std::uint64_t flash_reads = 0;      // includes GC relocation
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_relocated_pages = 0;
  std::uint64_t wear_level_moves = 0;
  std::uint64_t trimmed_pages = 0;
  std::uint64_t ecc_corrected_words = 0;
  std::uint64_t read_retries = 0;
  std::uint64_t program_failures = 0;
  std::uint64_t erase_failures = 0;
  std::uint64_t grown_bad_blocks = 0;
  std::uint64_t retirement_relocations = 0;
  std::uint64_t cache_write_hits = 0;   // writes absorbed by the buffer
  std::uint64_t cache_read_hits = 0;    // reads served from the buffer
  std::uint64_t cache_flushes = 0;      // buffered pages written to NAND
  std::uint32_t min_erase_count = 0;
  std::uint32_t max_erase_count = 0;
  std::uint64_t free_blocks = 0;

  /// Write amplification factor: flash programs per host write.
  double Waf() const {
    return host_page_writes == 0
               ? 1.0
               : static_cast<double>(flash_programs) / static_cast<double>(host_page_writes);
  }
};

class Ftl {
 public:
  Ftl(flash::Array* array, FtlConfig config = {});

  /// Logical page count exported to the block layer.
  std::uint64_t user_pages() const { return user_pages_; }
  std::uint32_t page_data_bytes() const { return array_->geometry().page_data_bytes; }

  /// Reads logical page `lpn`. A never-written or trimmed page yields zeros
  /// (like a thin-provisioned SSD). `out` must be page_data_bytes long.
  Status ReadPage(std::uint64_t lpn, std::span<std::uint8_t> out, IoCost* cost = nullptr);

  /// Writes logical page `lpn`. `data` must be page_data_bytes long.
  /// May trigger garbage collection; kResourceExhausted when even GC cannot
  /// free a block (device genuinely full of valid data).
  Status WritePage(std::uint64_t lpn, std::span<const std::uint8_t> data,
                   IoCost* cost = nullptr);

  /// Invalidates `count` logical pages starting at `lpn` (NVMe Dataset
  /// Management / TRIM). Unmapped pages are skipped silently.
  Status Trim(std::uint64_t lpn, std::uint64_t count, IoCost* cost = nullptr);

  /// Drains the write cache to NAND (NVMe Flush).
  Status Flush(IoCost* cost = nullptr);

  FtlStats Stats() const;

 private:
  enum class BlockState : std::uint8_t { kFree, kActive, kClosed, kBad };

  struct BlockInfo {
    BlockState state = BlockState::kFree;
    std::uint32_t valid_pages = 0;
    std::uint32_t next_page = 0;     // for active blocks
    std::uint32_t erase_count = 0;
  };

  // All private helpers assume mutex_ is held.
  /// Reads + ECC-decodes a physical page with read-retry (transient raw bit
  /// errors re-sample on every array read, as on real NAND).
  Status ReadAndDecodeLocked(flash::Ppn ppn, std::span<std::uint8_t> page_buf,
                             IoCost* cost);
  Status WritePageLocked(std::uint64_t lpn, std::span<const std::uint8_t> data,
                         IoCost* cost);
  /// Picks/advances the active block of `die` and returns the PPN to program.
  /// GC relocation writes instead use a single dedicated frontier block
  /// (`gc_active_`) so garbage collection can always make progress with one
  /// free block — striping relocations across every die could open
  /// dies-many fresh blocks and drain the reserve mid-collection.
  Result<flash::Ppn> AllocatePageLocked(std::uint32_t die, IoCost* cost);
  Result<flash::Ppn> AllocateGcPageLocked();
  Result<flash::Pbn> TakeFreeBlockLocked(std::uint32_t die);
  Status GarbageCollectLocked(IoCost* cost);
  Status RelocateBlockLocked(flash::Pbn victim, IoCost* cost);
  /// Grown-bad-block handling: detaches the block from any write frontier,
  /// marks it retired, and relocates its surviving valid pages (bad blocks
  /// stay readable; they just refuse further program/erase).
  Status RetireBlockLocked(flash::Pbn bad_block, IoCost* cost);
  void MaybeWearLevelLocked(IoCost* cost);
  void InvalidatePpnLocked(flash::Ppn ppn);
  std::uint32_t DieOfBlock(flash::Pbn pbn) const {
    return static_cast<std::uint32_t>(pbn / array_->geometry().blocks_per_die());
  }

  flash::Array* array_;
  const FtlConfig config_;
  ecc::PageCodec codec_;
  std::uint64_t user_pages_;

  mutable std::mutex mutex_;
  std::vector<flash::Ppn> l2p_;            // lpn -> ppn (kInvalidPpn if unmapped)
  std::vector<std::uint64_t> p2l_;         // ppn -> lpn (kUnmappedLpn if invalid)
  std::vector<BlockInfo> blocks_;          // per pbn
  std::vector<std::vector<flash::Pbn>> free_blocks_;  // per die
  std::uint64_t free_block_count_ = 0;
  std::vector<flash::Pbn> active_block_;   // per die; kNoActive if none
  flash::Pbn gc_active_ = ~0ull;           // GC relocation frontier
  std::uint32_t next_write_die_ = 0;       // round-robin write striping
  bool in_gc_ = false;                     // relocation writes must not recurse
  FtlStats stats_;

  // Write cache: FIFO of dirty pages with an index. Evicting flushes the
  // oldest quarter so a streaming writer amortizes NAND programming.
  struct CacheEntry {
    std::uint64_t lpn;
    std::vector<std::uint8_t> data;
  };
  std::list<CacheEntry> cache_fifo_;
  std::unordered_map<std::uint64_t, std::list<CacheEntry>::iterator> cache_index_;
  Status EvictCacheLocked(std::size_t target_size, IoCost* cost);

  /// Model latency of staging/serving one page in controller DRAM.
  static constexpr units::Seconds kCacheLatency = units::usec(4);

  static constexpr std::uint64_t kUnmappedLpn = ~0ull;
  static constexpr flash::Pbn kNoActive = ~0ull;
};

}  // namespace compstor::ftl
