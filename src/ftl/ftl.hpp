// Page-mapped flash translation layer with greedy garbage collection, wear
// leveling, and trim — the "SSD controller software" of the paper's Fig 4.
//
// Writes stripe across dies round-robin (one active block per die) to exploit
// channel parallelism; reads route through the page codec so every user read
// exercises ECC decode.
//
// Locking (multi-queue back-end: several NVMe workers call in concurrently):
//   1. maintenance mutex — GC, wear leveling, bad-block retirement drain.
//   2. shard mutex       — mapping shard of the LPN (l2p entry + cache shard).
//   3. die mutex         — a die's free pool, write frontier, p2l entries,
//                          held across the NAND program (a die programs one
//                          page at a time, so this is also physical).
// Acquisition strictly follows that order; no path holds two locks of the
// same level. GC relocations re-verify `l2p[lpn] == ppn` under the shard
// lock before switching the mapping, so data-path overwrites win races
// against relocation. Stats are atomics; IoCost stays caller-local.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "ecc/page_codec.hpp"
#include "flash/array.hpp"
#include "telemetry/metrics.hpp"

namespace compstor::ftl {

struct FtlConfig {
  /// Fraction of raw blocks reserved as over-provisioning.
  double op_ratio = 0.125;
  /// GC starts when free blocks drop to this count...
  std::uint32_t gc_low_watermark = 3;
  /// ...and runs until this many blocks are free again.
  std::uint32_t gc_high_watermark = 6;
  /// Static wear leveling kicks in when (max-min) erase count exceeds this.
  std::uint32_t wear_delta_threshold = 64;
  /// Pages of RAM write cache — the paper's "fast-release host data buffer".
  /// Writes complete at buffer speed and flush to NAND on eviction or an
  /// explicit Flush(). 0 disables the cache (write-through).
  std::uint32_t write_cache_pages = 0;
  /// Lock shards over the LPN space (mapping table + write cache). More
  /// shards, less data-path contention; capacity checks stay global.
  std::uint32_t map_shards = 16;
};

/// Model cost of one FTL operation (latency plus op counts for energy).
/// Caller-local: each back-end worker passes its own instance, so no locking.
struct IoCost {
  units::Seconds latency = 0;
  std::uint64_t flash_reads = 0;
  std::uint64_t flash_programs = 0;
  std::uint64_t flash_erases = 0;

  void Add(const IoCost& o) {
    latency += o.latency;
    flash_reads += o.flash_reads;
    flash_programs += o.flash_programs;
    flash_erases += o.flash_erases;
  }
};

struct FtlStats {
  std::uint64_t host_page_writes = 0;
  std::uint64_t host_page_reads = 0;
  std::uint64_t flash_programs = 0;   // includes GC relocation
  std::uint64_t flash_reads = 0;      // includes GC relocation
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_relocated_pages = 0;
  std::uint64_t wear_level_moves = 0;
  std::uint64_t trimmed_pages = 0;
  std::uint64_t ecc_corrected_words = 0;
  std::uint64_t read_retries = 0;
  std::uint64_t program_failures = 0;
  std::uint64_t erase_failures = 0;
  std::uint64_t grown_bad_blocks = 0;
  std::uint64_t retirement_relocations = 0;
  std::uint64_t cache_write_hits = 0;   // writes absorbed by the buffer
  std::uint64_t cache_read_hits = 0;    // reads served from the buffer
  std::uint64_t cache_flushes = 0;      // buffered pages written to NAND
  std::uint64_t scrubbed_pages = 0;     // ScrubPage calls that reached media
  std::uint64_t scrub_refreshed = 0;    // pages rewritten after correction
  std::uint64_t scrub_uncorrectable = 0;  // pages lost to uncorrectable errors
  // Lock-contention counts: acquisitions that found the lock already held
  // (try_lock failed and the caller blocked). The honest "how parallel is the
  // back-end really" signal for the multi-queue experiments.
  std::uint64_t shard_lock_contended = 0;
  std::uint64_t die_lock_contended = 0;
  std::uint64_t maintenance_lock_contended = 0;
  std::uint32_t min_erase_count = 0;
  std::uint32_t max_erase_count = 0;
  std::uint64_t free_blocks = 0;

  /// Write amplification factor: flash programs per host write.
  double Waf() const {
    return host_page_writes == 0
               ? 1.0
               : static_cast<double>(flash_programs) / static_cast<double>(host_page_writes);
  }
};

class Ftl {
 public:
  Ftl(flash::Array* array, FtlConfig config = {});

  /// Logical page count exported to the block layer.
  std::uint64_t user_pages() const { return user_pages_; }
  std::uint32_t page_data_bytes() const { return array_->geometry().page_data_bytes; }

  /// Reads logical page `lpn`. A never-written or trimmed page yields zeros
  /// (like a thin-provisioned SSD). `out` must be page_data_bytes long.
  Status ReadPage(std::uint64_t lpn, std::span<std::uint8_t> out, IoCost* cost = nullptr);

  /// Writes logical page `lpn`. `data` must be page_data_bytes long.
  /// May trigger garbage collection; kResourceExhausted when even GC cannot
  /// free a block (device genuinely full of valid data).
  Status WritePage(std::uint64_t lpn, std::span<const std::uint8_t> data,
                   IoCost* cost = nullptr);

  /// Invalidates `count` logical pages starting at `lpn` (NVMe Dataset
  /// Management / TRIM). Unmapped pages are skipped silently.
  Status Trim(std::uint64_t lpn, std::uint64_t count, IoCost* cost = nullptr);

  /// Drains the write cache to NAND (NVMe Flush).
  Status Flush(IoCost* cost = nullptr);

  /// Media refresh of one logical page (the device-side scrub verb): reads
  /// the backing flash page through ECC and rewrites it to a fresh location
  /// when the codec had to correct raw bit errors, so accumulating flips
  /// never cross the correction horizon. An uncorrectable page is unmapped
  /// (subsequent reads return zeros — the logical content is gone) and its
  /// block queued for retirement; returns kDataLoss so the caller can report
  /// the loss. Unmapped/cached pages are trivially ok.
  Status ScrubPage(std::uint64_t lpn, IoCost* cost = nullptr);

  /// Current physical location of `lpn` (kNotFound if unmapped). For fault
  /// harnesses that damage specific media pages and for layout diagnostics;
  /// the mapping can move underneath the caller (GC, scrub refresh), so
  /// treat the answer as a point-in-time snapshot.
  Result<flash::Ppn> LookupPpn(std::uint64_t lpn) const;

  FtlStats Stats() const;

  /// Exports the FTL counters as probes under `ftl.*` (evaluated lazily at
  /// snapshot time; the data path keeps its relaxed atomics untouched).
  void RegisterMetrics(telemetry::Registry* registry);

 private:
  enum class BlockState : std::uint8_t { kFree, kActive, kClosed, kBad };

  /// Per-block metadata. `state`/`valid_pages`/`erase_count` are atomics so
  /// GC victim selection and Stats() can scan without taking every die lock;
  /// transitions still happen under the owning die lock (or the maintenance
  /// lock for closed blocks). `next_page` is only touched for frontiers,
  /// under the die lock (host frontiers) or maintenance (GC frontier).
  struct BlockInfo {
    std::atomic<BlockState> state{BlockState::kFree};
    std::atomic<std::uint32_t> valid_pages{0};
    std::atomic<std::uint32_t> erase_count{0};
    std::uint32_t next_page = 0;
  };

  struct CacheEntry {
    std::uint64_t lpn;
    std::uint64_t seq;  // global FIFO position, for cross-shard eviction order
    std::vector<std::uint8_t> data;
  };

  /// One lock shard of the mapping: guards l2p entries with lpn % shards ==
  /// index, plus that slice of the write cache.
  struct MapShard {
    std::mutex mutex;
    std::list<CacheEntry> cache_fifo;
    std::unordered_map<std::uint64_t, std::list<CacheEntry>::iterator> cache_index;
  };

  /// One die's allocation state: free pool and write frontier.
  struct DieState {
    std::mutex mutex;
    std::vector<flash::Pbn> free_blocks;
    flash::Pbn active = ~0ull;
  };

  MapShard& ShardOf(std::uint64_t lpn) { return *shards_[lpn % shards_.size()]; }
  const MapShard& ShardOf(std::uint64_t lpn) const {
    return *shards_[lpn % shards_.size()];
  }

  /// Reads + ECC-decodes a physical page with read-retry (transient raw bit
  /// errors re-sample on every array read, as on real NAND). The caller must
  /// hold the shard lock of the mapping that points at `ppn`, which pins it.
  /// `corrected_words` (optional) receives the corrections of the winning
  /// attempt, so the scrubber can tell a clean page from a decaying one.
  Status ReadAndDecode(flash::Ppn ppn, std::span<std::uint8_t> page_buf, IoCost* cost,
                       std::uint32_t* corrected_words = nullptr);

  /// Encodes and programs `data` for `lpn` on some die's write frontier,
  /// then flips the mapping. Caller holds the shard lock of `lpn`.
  Status ProgramShardLocked(std::uint64_t lpn, std::span<const std::uint8_t> data,
                            IoCost* cost);
  /// Encodes `data` into a full raw page image (data + ECC spare).
  Status EncodePage(std::span<const std::uint8_t> data, std::vector<std::uint8_t>& page);
  /// Allocates a frontier page on a die with space and programs `page` into
  /// it; sets p2l/valid under the same die-lock hold so GC never observes a
  /// programmed page without its reverse mapping. Non-GC callers leave the
  /// last free block for the GC frontier (kGcReserveBlocks).
  Result<flash::Ppn> ProgramAnywhere(std::uint64_t lpn,
                                     std::span<const std::uint8_t> page, IoCost* cost);
  /// Pops the least-worn free block of `die` and opens it as a frontier.
  /// Caller holds the die lock. kNoActive == nothing available (for non-GC
  /// callers this includes "only the GC reserve is left").
  flash::Pbn TakeFreeBlockDieLocked(DieState& die, bool for_gc);
  /// Marks a block grown-bad and queues its valid pages for relocation.
  /// Caller holds the owning die lock (host frontier) or maintenance (GC).
  void MarkBadQueueRetire(flash::Pbn block);

  /// Runs watermark GC if the pool is still low after taking the maintenance
  /// lock; also drains pending retirements and wear-levels. Errors are
  /// swallowed — the caller's allocation decides whether the write fails.
  void MaybeMaintain(IoCost* cost);
  /// Unconditional collection toward the high watermark (called after an
  /// allocation failed). kResourceExhausted == nothing reclaimable.
  Status ForceCollect(IoCost* cost);
  /// Core GC loop; maintenance lock held.
  Status CollectLocked(IoCost* cost);
  /// Relocates every still-valid page of `victim`, then erases it
  /// (`erase_after` is false for grown-bad blocks, which cannot erase).
  /// Maintenance lock held.
  Status RelocateAndErase(flash::Pbn victim, bool erase_after,
                          std::atomic<std::uint64_t>* relocation_counter, IoCost* cost);
  /// GC-frontier program (single dedicated frontier so collection consumes
  /// at most one reserve block at a time). Maintenance + shard(lpn) held.
  Result<flash::Ppn> ProgramGcPage(std::uint64_t lpn,
                                   std::span<const std::uint8_t> page, IoCost* cost);
  void MaybeWearLevelLocked(IoCost* cost);
  void DrainRetirementsLocked(IoCost* cost);
  /// Clears the reverse mapping of `ppn` and drops the block's valid count.
  void InvalidatePpn(flash::Ppn ppn);

  /// Evicts globally-oldest cache entries (min seq across shard fronts) until
  /// `target` entries remain, forcing collection when the pool runs dry.
  /// Shared by WritePage's over-capacity path and Flush.
  Status EvictWithGcRetry(std::size_t target, IoCost* cost);

  std::uint32_t DieOfBlock(flash::Pbn pbn) const {
    return static_cast<std::uint32_t>(pbn / array_->geometry().blocks_per_die());
  }

  flash::Array* array_;
  const FtlConfig config_;
  ecc::PageCodec codec_;
  std::uint64_t user_pages_;

  std::vector<std::unique_ptr<MapShard>> shards_;
  std::vector<std::unique_ptr<DieState>> dies_;
  std::vector<std::atomic<flash::Ppn>> l2p_;   // lpn -> ppn; shard lock to write
  std::vector<std::uint64_t> p2l_;             // ppn -> lpn; die lock
  std::unique_ptr<BlockInfo[]> blocks_;        // per pbn
  std::atomic<std::uint64_t> free_block_count_{0};
  std::atomic<std::uint32_t> next_write_die_{0};  // round-robin write striping

  std::mutex maintenance_mutex_;
  flash::Pbn gc_active_ = ~0ull;  // GC relocation frontier; maintenance lock
  std::mutex retire_mutex_;
  std::vector<flash::Pbn> pending_retire_;
  std::atomic<std::size_t> pending_retire_count_{0};

  std::mutex cache_evict_mutex_;  // one evictor drains at a time
  std::atomic<std::size_t> cache_entries_{0};
  std::atomic<std::uint64_t> cache_seq_{0};

  struct Counters {
    std::atomic<std::uint64_t> host_page_writes{0};
    std::atomic<std::uint64_t> host_page_reads{0};
    std::atomic<std::uint64_t> flash_programs{0};
    std::atomic<std::uint64_t> flash_reads{0};
    std::atomic<std::uint64_t> gc_runs{0};
    std::atomic<std::uint64_t> gc_relocated_pages{0};
    std::atomic<std::uint64_t> wear_level_moves{0};
    std::atomic<std::uint64_t> trimmed_pages{0};
    std::atomic<std::uint64_t> ecc_corrected_words{0};
    std::atomic<std::uint64_t> read_retries{0};
    std::atomic<std::uint64_t> program_failures{0};
    std::atomic<std::uint64_t> erase_failures{0};
    std::atomic<std::uint64_t> grown_bad_blocks{0};
    std::atomic<std::uint64_t> retirement_relocations{0};
    std::atomic<std::uint64_t> cache_write_hits{0};
    std::atomic<std::uint64_t> cache_read_hits{0};
    std::atomic<std::uint64_t> cache_flushes{0};
    std::atomic<std::uint64_t> scrubbed_pages{0};
    std::atomic<std::uint64_t> scrub_refreshed{0};
    std::atomic<std::uint64_t> scrub_uncorrectable{0};
    std::atomic<std::uint64_t> shard_lock_contended{0};
    std::atomic<std::uint64_t> die_lock_contended{0};
    std::atomic<std::uint64_t> maintenance_lock_contended{0};
  };
  mutable Counters counters_;

  /// Model latency of staging/serving one page in controller DRAM.
  static constexpr units::Seconds kCacheLatency = units::usec(4);
  /// Free blocks the data path must leave behind so the GC frontier can
  /// always open (otherwise a racing burst of writers could drain the pool
  /// to zero and wedge collection with reclaimable space still on disk).
  static constexpr std::uint64_t kGcReserveBlocks = 1;

  static constexpr std::uint64_t kUnmappedLpn = ~0ull;
  static constexpr flash::Pbn kNoActive = ~0ull;
};

}  // namespace compstor::ftl
