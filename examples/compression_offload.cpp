// Cooperative host + in-storage compression — the Fig 7 scenario as an
// application.
//
// A corpus is split between the Xeon host (reading over PCIe, compressing
// with its 16 threads) and two CompStors (compressing in place on their A53
// clusters). Both run concurrently; the example prints the per-side model
// throughput and energy, showing the devices add throughput at a fraction
// of the energy.
//
// Build & run:  cmake --build build && ./build/examples/compression_offload
#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "client/in_situ.hpp"
#include "host/executor.hpp"
#include "isps/agent.hpp"
#include "isps/profile.hpp"
#include "ssd/profiles.hpp"
#include "ssd/ssd.hpp"
#include "workload/dataset.hpp"

using namespace compstor;

int main() {
  constexpr std::size_t kDevices = 2;

  // Host stack: Xeon + off-the-shelf SSD.
  ssd::Ssd host_ssd(ssd::OffTheShelfProfile(0.01));
  host::HostExecutor host(&host_ssd);
  if (!host.FormatFilesystem().ok()) return 1;

  // Two CompStors.
  struct Device {
    std::unique_ptr<ssd::Ssd> ssd;
    std::unique_ptr<isps::Agent> agent;
    std::unique_ptr<client::CompStorHandle> handle;
  };
  std::vector<Device> devices(kDevices);
  for (std::size_t d = 0; d < kDevices; ++d) {
    devices[d].ssd = std::make_unique<ssd::Ssd>(ssd::CompStorProfile(0.002), d + 9);
    devices[d].agent = std::make_unique<isps::Agent>(devices[d].ssd.get());
    devices[d].handle = std::make_unique<client::CompStorHandle>(devices[d].ssd.get());
    if (!devices[d].handle->FormatFilesystem().ok()) return 1;
  }

  // Stage shares: the host gets most files (it is faster); each device gets
  // a slice of the corpus on its own flash.
  auto stage = [](fs::Filesystem& fs, std::uint32_t files, std::uint64_t bytes,
                  std::uint64_t seed) {
    workload::DatasetSpec spec;
    spec.num_files = files;
    spec.total_bytes = bytes;
    spec.seed = seed;
    spec.uniform_sizes = true;
    return workload::BuildDataset(&fs, spec);
  };
  auto host_ds = stage(host.filesystem(), 24, 3u << 20, 21);
  if (!host_ds.ok()) return 1;
  std::vector<workload::Dataset> dev_ds;
  for (std::size_t d = 0; d < kDevices; ++d) {
    auto ds = stage(devices[d].agent->filesystem(), 4, 512u << 10, 30 + d);
    if (!ds.ok()) return 1;
    dev_ds.push_back(*ds);
  }

  // Kick everything off concurrently.
  std::vector<std::future<proto::Response>> host_futures;
  for (const auto& f : host_ds->files) {
    auto p = std::make_shared<std::promise<proto::Response>>();
    host_futures.push_back(p->get_future());
    proto::Command cmd;
    cmd.type = proto::CommandType::kExecutable;
    cmd.executable = "bzip2";
    cmd.args = {f.path};
    host.runtime().Spawn(cmd, [p](proto::Response r) { p->set_value(std::move(r)); });
  }
  std::vector<client::MinionFuture> dev_futures;
  for (std::size_t d = 0; d < kDevices; ++d) {
    for (const auto& f : dev_ds[d].files) {
      proto::Command cmd;
      cmd.type = proto::CommandType::kExecutable;
      cmd.executable = "bzip2";
      cmd.args = {f.path};
      dev_futures.push_back(devices[d].handle->SendMinion(cmd));
    }
  }

  double host_active_j = 0;
  for (auto& f : host_futures) {
    proto::Response r = f.get();
    if (!r.ok()) std::fprintf(stderr, "host task failed: %s\n", r.status_message.c_str());
    host_active_j += r.energy_joules;
  }
  double dev_active_j = 0;
  for (auto& f : dev_futures) {
    auto m = f.Get();
    if (!m.ok() || !m->response.ok()) {
      std::fprintf(stderr, "device task failed\n");
      continue;
    }
    dev_active_j += m->response.energy_joules;
  }

  const double host_time = host.cores().Makespan();
  double dev_time = 0;
  std::uint64_t dev_bytes = 0;
  for (std::size_t d = 0; d < kDevices; ++d) {
    dev_time = std::max(dev_time, devices[d].agent->cores().Makespan());
    dev_bytes += dev_ds[d].TotalOriginalBytes();
  }
  const std::uint64_t host_bytes = host_ds->TotalOriginalBytes();

  const double host_mbps = static_cast<double>(host_bytes) / 1e6 / host_time;
  const double dev_mbps = static_cast<double>(dev_bytes) / 1e6 / dev_time;
  const double host_j = host_active_j +
                        host.profile().package_idle_watts * host_time;
  const double dev_j = dev_active_j +
                       kDevices * isps::IspsCpuProfile().package_idle_watts * dev_time;

  std::printf("cooperative bzip2 compression (model time/energy):\n\n");
  std::printf("%-22s %10.2f MiB  %8.1f MB/s  %8.1f J  (%.0f J/GB)\n",
              "Xeon host (16 thr)", static_cast<double>(host_bytes) / (1 << 20),
              host_mbps, host_j, host_j / (static_cast<double>(host_bytes) / 1e9));
  std::printf("%-22s %10.2f MiB  %8.1f MB/s  %8.1f J  (%.0f J/GB)\n",
              "2x CompStor (8 A53)", static_cast<double>(dev_bytes) / (1 << 20),
              dev_mbps, dev_j, dev_j / (static_cast<double>(dev_bytes) / 1e9));
  std::printf("%-22s %10s  %8.1f MB/s\n", "combined", "",
              host_mbps + dev_mbps);
  std::printf("\nThe devices compress in place: their share never crossed PCIe,\n"
              "and the whole system finished faster than the host alone.\n");
  return 0;
}
