// Distributed in-storage search across a cluster of CompStors — the paper's
// "single host, multiple SSDs" deployment (Fig 2).
//
// A synthetic book corpus is partitioned across four devices by size (LPT),
// then a grep minion per file runs concurrently on every device's ISPS; the
// host only aggregates the per-file counts. The drive-local work scales with
// the device count (Fig 6) and the host link carries only commands+results.
//
// Build & run:  cmake --build build && ./build/examples/distributed_search
//
// Telemetry:
//   --trace <path>   dump a merged Chrome trace_event JSON of the run (one
//                    trace pid per device) — open in chrome://tracing or
//                    https://ui.perfetto.dev, or feed to tools/trace_analyze
//   --analyze        stitch the per-device rings and print the per-query
//                    critical-path report (host+wire / dispatch / compute /
//                    io / flash / respond self-time split)
//   --stats          print the cluster-wide merged kStats snapshot plus the
//                    per-device and per-query cost/energy ledger tables
//   --ledger <path>  write the merged per-query ledger as JSON (CI artifact)
//   --scrub-stats    after the search, silently flip one stored bit on one
//                    device (inside SECDED, so no query noticed), run a
//                    background scrub pass on every device, and print the
//                    per-device scrub.* / journal.* integrity counters —
//                    the pass finds and repairs the rot in place
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "client/cluster.hpp"
#include "client/in_situ.hpp"
#include "fs/filesystem.hpp"
#include "isps/agent.hpp"
#include "ssd/profiles.hpp"
#include "ssd/ssd.hpp"
#include "telemetry/analyze.hpp"
#include "telemetry/ledger.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "workload/dataset.hpp"

using namespace compstor;

namespace {

struct Device {
  std::unique_ptr<ssd::Ssd> ssd;
  std::unique_ptr<isps::Agent> agent;
  std::unique_ptr<client::CompStorHandle> handle;
};

}  // namespace

int main(int argc, char** argv) {
  constexpr std::size_t kDevices = 4;
  constexpr std::uint32_t kFiles = 12;

  std::string trace_path;
  std::string ledger_path;
  bool print_stats = false;
  bool analyze = false;
  bool scrub_stats = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--ledger") == 0 && i + 1 < argc) {
      ledger_path = argv[++i];
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      print_stats = true;
    } else if (std::strcmp(argv[i], "--analyze") == 0) {
      analyze = true;
    } else if (std::strcmp(argv[i], "--scrub-stats") == 0) {
      scrub_stats = true;
    } else {
      // Unknown flags (or --trace/--ledger missing their path) used to be
      // silently ignored, which turned typos into no-ops; fail loudly.
      std::fprintf(stderr, "distributed_search: unknown argument '%s'\n",
                   argv[i]);
      std::fprintf(stderr,
                   "usage: distributed_search [--trace PATH] [--analyze] "
                   "[--stats] [--ledger PATH] [--scrub-stats]\n");
      return 2;
    }
  }

  // Bring up the cluster.
  std::vector<Device> devices(kDevices);
  client::Cluster cluster;
  for (std::size_t d = 0; d < kDevices; ++d) {
    devices[d].ssd = std::make_unique<ssd::Ssd>(ssd::CompStorProfile(0.002),
                                                /*seed=*/d + 1);
    devices[d].agent = std::make_unique<isps::Agent>(devices[d].ssd.get());
    devices[d].handle = std::make_unique<client::CompStorHandle>(devices[d].ssd.get());
    if (!devices[d].handle->FormatFilesystem().ok()) return 1;
    cluster.AddDevice(devices[d].handle.get());
  }
  std::printf("cluster: %zu CompStor devices\n", cluster.size());

  // Generate the corpus up front (sizes vary ~4x like real books), then let
  // the cluster's LPT assignment decide which device stores which book.
  workload::DatasetSpec spec;
  spec.num_files = kFiles;
  spec.total_bytes = 3u << 20;
  spec.seed = 7;
  std::vector<std::string> contents;
  auto ds = workload::BuildDatasetInMemory(spec, &contents);
  if (!ds.ok()) return 1;

  std::vector<std::uint64_t> sizes;
  for (const auto& f : ds->files) sizes.push_back(f.stored_bytes);
  const std::vector<std::size_t> placement = cluster.AssignByWeight(sizes);

  std::vector<std::uint64_t> stored_per_device(kDevices, 0);
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    const std::size_t d = placement[i];
    if (!devices[d].handle->host_fs().Mkdir("/data").ok() &&
        !devices[d].handle->host_fs().Stat("/data").ok()) {
      return 1;
    }
    if (!devices[d].handle->UploadFile(ds->files[i].path, contents[i]).ok()) return 1;
    stored_per_device[d] += sizes[i];
  }
  for (std::size_t d = 0; d < kDevices; ++d) {
    // Staging is done: drain the write cache so the searches below read the
    // NAND itself (and the trace/ledger attribute real flash work).
    if (!devices[d].ssd->ftl().Flush().ok()) return 1;
    std::printf("  device %zu stores %6.2f MiB\n", d,
                static_cast<double>(stored_per_device[d]) / (1 << 20));
  }

  // Fan out one grep minion per book; the host never sees the text.
  std::vector<client::Cluster::WorkItem> work;
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    proto::Command cmd;
    cmd.type = proto::CommandType::kExecutable;
    cmd.executable = "grep";
    cmd.args = {"-c", "-w", "government", ds->files[i].path};
    work.push_back({placement[i], cmd});
  }
  auto results = cluster.RunAll(work);
  if (!results.ok()) {
    std::fprintf(stderr, "cluster run failed: %s\n", results.status().ToString().c_str());
    return 1;
  }

  std::uint64_t total_hits = 0;
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    const std::string& out = (*results)[i].response.stdout_data;
    total_hits += std::strtoull(out.c_str(), nullptr, 10);
  }
  std::printf("\n'government' occurrences across the corpus: %llu\n",
              static_cast<unsigned long long>(total_hits));

  // Load-balancing telemetry: the Query entity at work.
  for (std::size_t d = 0; d < kDevices; ++d) {
    auto status = devices[d].handle->GetStatus();
    if (status.ok()) {
      std::printf("  device %zu: %u cores, utilization %.0f%%, %.1f C, "
                  "core-makespan %.4fs\n",
                  d, status->core_count, status->utilization * 100,
                  status->temperature_c, status->uptime_virtual_s);
    }
  }

  std::uint64_t link_bytes = 0;
  std::uint64_t data_bytes = 0;
  for (std::size_t d = 0; d < kDevices; ++d) {
    link_bytes += devices[d].ssd->link().TotalBytes();
    data_bytes += stored_per_device[d];
  }
  std::printf("\nPCIe traffic: %.2f MiB for %.2f MiB of searched data "
              "(staging included)\n",
              static_cast<double>(link_bytes) / (1 << 20),
              static_cast<double>(data_bytes) / (1 << 20));

  // Integrity demo: plant one bit of silent rot, then let the background
  // scrubber find and repair it before any future query could be affected.
  if (scrub_stats) {
    // Flip a single stored bit in the first book's payload on whichever
    // device holds it. One flip per 64-bit codeword is inside SECDED, so the
    // searches above read the file cleanly — but left alone the damage would
    // sit on the media and compound with later disturb errors.
    const std::size_t victim = placement[0];
    {
      fs::Filesystem host(&devices[victim].ssd->host_block_device(),
                          devices[victim].ssd->fs_mutex());
      if (!host.Mount().ok()) return 1;
      auto ino = host.Lookup(ds->files[0].path);
      if (!ino.ok()) return 1;
      auto extents = host.InodeExtents(*ino);
      if (!extents.ok() || extents->empty()) return 1;
      auto ppn = devices[victim].ssd->ftl().LookupPpn((*extents)[0]);
      if (!ppn.ok()) return 1;
      const std::uint32_t one_bit[] = {0};
      if (!devices[victim].ssd->array().CorruptStoredPage(*ppn, one_bit).ok()) {
        return 1;
      }
    }
    std::printf("\n--- scrub pass (1 bit of planted rot on device %zu) ---\n",
                victim);
    for (std::size_t d = 0; d < kDevices; ++d) {
      const Status pass = devices[d].agent->RunScrubPass();
      if (!pass.ok()) {
        std::fprintf(stderr, "device %zu scrub: %s\n", d,
                     pass.ToString().c_str());
        return 1;
      }
    }
    for (std::size_t d = 0; d < kDevices; ++d) {
      std::printf("  device %zu:", d);
      for (const auto& m : devices[d].ssd->telemetry().Snapshot()) {
        if (m.name.rfind("scrub.", 0) == 0 ||
            m.name.rfind("journal.", 0) == 0) {
          std::printf("  %s=%.0f", m.name.c_str(), m.value);
        }
      }
      std::printf("\n");
    }
    const auto& victim_scrub = devices[victim].agent->scrubber().Stats();
    std::printf("the planted flip was decoded and rewritten in place "
                "(device %zu refreshed %llu blocks, retired %llu)\n",
                victim,
                static_cast<unsigned long long>(victim_scrub.media_blocks),
                static_cast<unsigned long long>(victim_scrub.media_retired));
  }

  // Cluster-wide merged stats snapshot: every device's registry fetched over
  // the wire (kStats) plus the cluster's own breaker counters and ledgers.
  if (print_stats) {
    std::printf("\n--- cluster stats (kStats merge) ---\n");
    telemetry::PrintMetricsTable(stdout, cluster.CollectStats());
    for (std::size_t d = 0; d < kDevices; ++d) {
      std::printf("\n--- device %zu per-query ledger ---\n", d);
      telemetry::PrintQueryLedgerTable(stdout,
                                       devices[d].ssd->query_ledger().Snapshot());
    }
    std::printf("\n--- host (cluster) per-query ledger ---\n");
    telemetry::PrintQueryLedgerTable(stdout, cluster.query_ledger().Snapshot());
  }

  // Merged per-query ledger artifact: the device ledgers partition the
  // queries (each attempt lands on one device) and carry the flash columns
  // the host cannot see, so their union is the complete attribution.
  if (!ledger_path.empty()) {
    telemetry::QueryLedger merged;
    for (std::size_t d = 0; d < kDevices; ++d) {
      for (const auto& [id, cost] : devices[d].ssd->query_ledger().Snapshot()) {
        merged.Add(id, cost);
      }
    }
    const std::string json = telemetry::QueryLedgerToJson(merged.Snapshot());
    if (!telemetry::WriteTraceFile(ledger_path, json).ok()) {
      std::fprintf(stderr, "failed to write ledger %s\n", ledger_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s (per-query cost/energy ledger)\n", ledger_path.c_str());
  }

  // Virtual-time trace of the whole run: one trace pid per device, NVMe
  // command spans and minion dispatch/run/respond spans on their lanes, all
  // tagged with the originating query id.
  if (!trace_path.empty()) {
    const std::string json = cluster.StitchedTraceJson();
    if (!telemetry::WriteTraceFile(trace_path, json).ok()) {
      std::fprintf(stderr, "failed to write trace %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s - open in chrome://tracing or ui.perfetto.dev, or "
                "run tools/trace_analyze on it\n",
                trace_path.c_str());
  }

  // In-process stitch + critical-path report (same analysis trace_analyze
  // runs offline on a --trace file).
  if (analyze) {
    const telemetry::ClusterTraceReport report =
        telemetry::AnalyzeDeviceTraces(cluster.CollectTraces());
    std::printf("\n--- stitched cluster trace analysis ---\n%s",
                telemetry::ReportToText(report).c_str());
  }
  return 0;
}
