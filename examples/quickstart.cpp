// Quickstart: the minimal CompStor workflow.
//
//  1. Bring up a CompStor device (emulated SSD + ISPS agent).
//  2. Attach a client handle and format the shared filesystem.
//  3. Upload a file through the normal NVMe path.
//  4. Send a minion that runs `grep` in-storage.
//  5. Read the response — the data never crossed PCIe.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "client/in_situ.hpp"
#include "isps/agent.hpp"
#include "ssd/profiles.hpp"
#include "ssd/ssd.hpp"

using namespace compstor;

int main() {
  // 1. The device: an emulated CompStor with its in-situ processing
  //    subsystem booted by the agent.
  ssd::Ssd device(ssd::CompStorProfile(/*capacity_scale=*/0.002));
  isps::Agent agent(&device);

  // 2. The host side: the in-situ client library.
  client::CompStorHandle compstor(&device);
  if (!compstor.FormatFilesystem().ok()) {
    std::fprintf(stderr, "format failed\n");
    return 1;
  }
  auto model = compstor.IdentifyModel();
  std::printf("attached to: %s\n", model.ok() ? model->c_str() : "?");

  // 3. Stage input data (this is a normal NVMe write).
  const char* log =
      "2026-07-01 INFO  service started\n"
      "2026-07-01 ERROR disk 3 offline\n"
      "2026-07-02 INFO  rebalance complete\n"
      "2026-07-02 ERROR checksum mismatch on disk 3\n";
  if (!compstor.UploadFile("/logs/service.log", log).ok()) {
    // /logs does not exist yet; create it and retry.
    (void)compstor.host_fs().Mkdir("/logs");
    if (!compstor.UploadFile("/logs/service.log", log).ok()) {
      std::fprintf(stderr, "upload failed\n");
      return 1;
    }
  }

  // 4. Configure a minion: run grep inside the drive. Reset the link
  //    counters first so we can show what the round trip itself moves.
  device.link().ResetStats();
  proto::Command cmd;
  cmd.type = proto::CommandType::kExecutable;
  cmd.executable = "grep";
  cmd.args = {"-n", "ERROR", "/logs/service.log"};
  cmd.input_files = {"/logs/service.log"};

  auto minion = compstor.RunMinion(cmd);
  if (!minion.ok() || !minion->response.ok()) {
    std::fprintf(stderr, "minion failed\n");
    return 1;
  }

  // 5. The response came back over PCIe; the log file itself never did.
  std::printf("\nin-storage grep output:\n%s", minion->response.stdout_data.c_str());
  std::printf("\ntask accounting: pid=%u cpu=%.6fs io=%.6fs read=%llu bytes, "
              "energy=%.4f J\n",
              minion->response.pid, minion->response.cpu_seconds,
              minion->response.io_seconds,
              static_cast<unsigned long long>(minion->response.bytes_read),
              minion->response.energy_joules);
  std::printf("bytes over PCIe for the whole round trip: %llu "
              "(the log itself stayed in the drive)\n",
              static_cast<unsigned long long>(device.link().TotalBytes()));
  return 0;
}
