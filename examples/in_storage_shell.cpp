// In-storage shell commands and dynamic task loading — the flexibility the
// paper claims over fixed-function in-storage accelerators (Table I).
//
// Demonstrates:
//  - arbitrary shell pipelines executing inside the drive;
//  - gawk programs running unmodified in-storage;
//  - dynamic task loading: installing a new command on a running device via
//    a Query, then invoking it like any built-in.
//
// Build & run:  cmake --build build && ./build/examples/in_storage_shell
#include <cstdio>

#include "client/in_situ.hpp"
#include "isps/agent.hpp"
#include "ssd/profiles.hpp"
#include "ssd/ssd.hpp"
#include "workload/textgen.hpp"

using namespace compstor;

namespace {

void RunShell(client::CompStorHandle& compstor, const char* line) {
  proto::Command cmd;
  cmd.type = proto::CommandType::kShellCommand;
  cmd.command_line = line;
  auto minion = compstor.RunMinion(cmd);
  std::printf("compstor$ %s\n", line);
  if (!minion.ok()) {
    std::printf("  [transport error: %s]\n", minion.status().ToString().c_str());
    return;
  }
  if (!minion->response.ok()) {
    std::printf("  [task error: %s]\n", minion->response.status_message.c_str());
    return;
  }
  std::printf("%s", minion->response.stdout_data.c_str());
  if (!minion->response.stderr_data.empty()) {
    std::printf("stderr: %s", minion->response.stderr_data.c_str());
  }
}

}  // namespace

int main() {
  ssd::Ssd device(ssd::CompStorProfile(0.002));
  isps::Agent agent(&device);
  client::CompStorHandle compstor(&device);
  if (!compstor.FormatFilesystem().ok()) return 1;

  // Stage a couple of synthetic books.
  for (int i = 0; i < 2; ++i) {
    workload::TextGenOptions opt;
    opt.seed = 50 + i;
    opt.approx_bytes = 96 * 1024;
    opt.title = "Book " + std::to_string(i);
    if (!compstor.UploadFile("/book" + std::to_string(i) + ".txt",
                             workload::GenerateBookText(opt)).ok()) {
      return 1;
    }
  }

  // 1. Plain shell commands and pipelines, executed by the drive.
  RunShell(compstor, "ls -l /");
  RunShell(compstor, "wc -l /book0.txt /book1.txt");
  RunShell(compstor, "cat /book0.txt | grep -c CHAPTER");
  RunShell(compstor, "head -n 3 /book1.txt");

  // 2. An awk program, unmodified, running in-storage.
  RunShell(compstor,
           "gawk '{ words += NF } END { printf \"%d words\\n\", words }' /book0.txt");

  // 3. Dynamic task loading: teach the running device a new command.
  const char* script =
      "# word histogram top-line: <count> occurrences of <word>\n"
      "grep -c -w $1 $2\n";
  if (!compstor.LoadTask("count-word", script).ok()) return 1;
  std::printf("\n[loaded task 'count-word' onto the device at runtime]\n\n");

  proto::Command cmd;
  cmd.type = proto::CommandType::kExecutable;
  cmd.executable = "count-word";
  cmd.args = {"the", "/book0.txt"};
  auto minion = compstor.RunMinion(cmd);
  if (minion.ok() && minion->response.ok()) {
    std::printf("compstor$ count-word the /book0.txt\n%s",
                minion->response.stdout_data.c_str());
  }

  auto tasks = compstor.ListTasks();
  if (tasks.ok()) {
    std::printf("\ninstalled commands (%zu):", tasks->size());
    for (const auto& t : *tasks) std::printf(" %s", t.c_str());
    std::printf("\n");
  }
  return 0;
}
