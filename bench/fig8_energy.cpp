// Reproduces Fig 8: energy consumption per gigabyte of input data (J/GB),
// CompStor vs the Xeon host, for the six workloads of the evaluation:
// gzip, gunzip, bzip2, bunzip2 (compute-intensive) and grep, gawk
// (IO-intensive).
//
// Methodology mirrors the paper (§IV.C): energy = average power x time,
// normalized per GB of input so the result is independent of the number of
// devices. Both platforms run the workloads single-stream (the regime the
// paper's absolute joules imply), over the same synthetic book corpus, with
// each book file processed by one command invocation.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "harness.hpp"

namespace {

using namespace compstor;
using bench::Measured;

constexpr std::uint32_t kFiles = 6;
constexpr std::uint64_t kTotalBytes = 6ull << 20;  // 6 MiB corpus (scaled)

std::vector<proto::Command> CommandsFor(const std::string& app,
                                        const workload::Dataset& ds,
                                        const char* suffix) {
  std::vector<proto::Command> cmds;
  for (const auto& f : ds.files) {
    cmds.push_back(bench::MakeAppCommand(app, f.path + suffix));
  }
  return cmds;
}

std::uint64_t StoredBytes(fs::Filesystem& fs, const workload::Dataset& ds,
                          const char* suffix) {
  std::uint64_t total = 0;
  for (const auto& f : ds.files) {
    auto st = fs.Stat(f.path + suffix);
    if (st.ok()) total += st->size;
  }
  return total;
}

using PhaseRunner =
    std::function<Measured(const std::vector<proto::Command>&, std::uint64_t)>;

/// Runs the six-workload sequence on one platform; the sequence restores the
/// corpus as it goes (gzip makes .gz, gunzip restores, ...). Returns results
/// in order gzip, gunzip, bzip2, bunzip2, grep, gawk.
std::vector<Measured> RunAllWorkloads(fs::Filesystem& fs, const PhaseRunner& run) {
  std::vector<Measured> out;
  const workload::Dataset ds = bench::StageDataset(fs, kFiles, kTotalBytes, /*seed=*/11);
  if (ds.files.empty()) return out;
  const std::uint64_t plain_bytes = StoredBytes(fs, ds, "");

  out.push_back(run(CommandsFor("gzip", ds, ""), plain_bytes));
  out.push_back(run(CommandsFor("gunzip", ds, ".gz"), StoredBytes(fs, ds, ".gz")));
  out.push_back(run(CommandsFor("bzip2", ds, ""), plain_bytes));
  out.push_back(run(CommandsFor("bunzip2", ds, ".bz2"), StoredBytes(fs, ds, ".bz2")));
  out.push_back(run(CommandsFor("grep", ds, ""), plain_bytes));
  out.push_back(run(CommandsFor("gawk", ds, ""), plain_bytes));
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader("Fig 8 - Energy consumption per gigabyte of input (J/GB)");

  struct PaperRow {
    const char* app;
    double compstor;
    double xeon;
  };
  const std::vector<PaperRow> paper = {
      {"gzip", 880.9, 1462},  {"gunzip", 177.6, 522}, {"bzip2", 1717, 2621.4},
      {"bunzip2", 1908, 4666}, {"grep", 68.5, 222.7},  {"gawk", 89.17, 295.4},
  };

  auto dev = bench::DeviceStack::Make(/*seed=*/3);
  auto host = bench::HostStack::Make(/*seed=*/3);
  if (!dev || !host) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  const std::vector<Measured> compstor = RunAllWorkloads(
      dev->agent->filesystem(),
      [&](const std::vector<proto::Command>& cmds, std::uint64_t bytes) {
        return bench::RunDeviceSequential(*dev, cmds, bytes);
      });
  const std::vector<Measured> xeon = RunAllWorkloads(
      host->exec->filesystem(),
      [&](const std::vector<proto::Command>& cmds, std::uint64_t bytes) {
        return bench::RunHostSequential(*host, cmds, bytes);
      });
  if (compstor.size() != paper.size() || xeon.size() != paper.size()) {
    std::fprintf(stderr, "workload sequence failed\n");
    return 1;
  }

  std::printf("%-9s | %10s %10s | %10s %10s | %16s\n", "workload",
              "CompStor", "(paper)", "Xeon", "(paper)", "saving (paper)");
  std::printf("%-9s | %10s %10s | %10s %10s |\n", "", "J/GB", "J/GB", "J/GB", "J/GB");
  std::printf("----------+-----------------------+-----------------------+---------"
              "--------\n");
  for (std::size_t i = 0; i < paper.size(); ++i) {
    const double ratio = compstor[i].JoulesPerGB() > 0
                             ? xeon[i].JoulesPerGB() / compstor[i].JoulesPerGB()
                             : 0;
    std::printf("%-9s | %10.1f %10.1f | %10.1f %10.1f | %6.2fx (%.2fx)\n",
                paper[i].app, compstor[i].JoulesPerGB(), paper[i].compstor,
                xeon[i].JoulesPerGB(), paper[i].xeon, ratio,
                paper[i].xeon / paper[i].compstor);
  }
  std::printf("\nEnergy = task-active + platform-baseline x makespan + storage ops,\n"
              "normalized per GB of input file data (as in the paper, so the\n"
              "result is independent of the number of CompStors).\n");
  return 0;
}
