// Ablation study of the two ISPS design choices the paper argues for:
//
//  1. DEDICATED application cores — Table I criticizes prior work that
//     borrows the flash-management processor. Sweep the ISPS core count
//     (1, 2, 4 = CompStor, 8) and report device throughput.
//  2. A DEDICATED high-bandwidth flash data path — §III.A: "ISPS can access
//     the flash data more efficiently than the host CPU". Sweep the
//     internal stream rate from host-link speed (no dedicated path) up.
//
// Workloads: grep (IO-bound, path-sensitive) and bzip2 (compute-bound,
// core-count-sensitive).
#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "apps/registry.hpp"
#include "energy/cost_model.hpp"
#include "fs/filesystem.hpp"
#include "isps/cores.hpp"
#include "isps/profile.hpp"
#include "isps/task_runtime.hpp"
#include "ssd/profiles.hpp"
#include "ssd/ssd.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace compstor;

constexpr std::uint32_t kFiles = 16;
constexpr std::uint64_t kBytes = 4u << 20;

struct Rig {
  std::unique_ptr<ssd::Ssd> ssd;
  std::unique_ptr<fs::Filesystem> fs;
  std::unique_ptr<apps::Registry> registry;
  std::unique_ptr<isps::CoreEmulator> cores;
  std::unique_ptr<isps::TaskRuntime> runtime;
  workload::Dataset dataset;
};

/// Builds a device rig with a custom core count and internal stream rate.
std::unique_ptr<Rig> MakeRig(int core_count, double internal_stream_bps) {
  auto rig = std::make_unique<Rig>();
  rig->ssd = std::make_unique<ssd::Ssd>(ssd::CompStorProfile(0.002));
  if (!fs::Filesystem::Format(&rig->ssd->host_block_device()).ok()) return nullptr;
  rig->fs = std::make_unique<fs::Filesystem>(&rig->ssd->internal_block_device(),
                                             rig->ssd->fs_mutex());
  if (!rig->fs->Mount().ok()) return nullptr;
  rig->registry = apps::Registry::WithBuiltins();

  energy::CpuProfile profile = isps::IspsCpuProfile();
  profile.cores = core_count;
  rig->cores = std::make_unique<isps::CoreEmulator>(profile, &rig->ssd->meter());

  energy::IoRates rates;
  rates.internal_stream = internal_stream_bps;
  rig->runtime = std::make_unique<isps::TaskRuntime>(
      rig->cores.get(), rig->fs.get(), rig->registry.get(),
      /*internal_path=*/true, rates);

  workload::DatasetSpec spec;
  spec.num_files = kFiles;
  spec.total_bytes = kBytes;
  spec.seed = 77;
  spec.uniform_sizes = true;
  auto ds = workload::BuildDataset(rig->fs.get(), spec);
  if (!ds.ok()) return nullptr;
  rig->dataset = *ds;
  return rig;
}

/// Runs `app` over the rig's dataset, all files concurrently; MB/s of model
/// throughput.
double Throughput(Rig& rig, const std::string& app) {
  rig.cores->ResetClocks();
  std::vector<std::future<proto::Response>> futures;
  for (const auto& f : rig.dataset.files) {
    auto p = std::make_shared<std::promise<proto::Response>>();
    futures.push_back(p->get_future());
    proto::Command cmd;
    cmd.type = proto::CommandType::kExecutable;
    cmd.executable = app;
    if (app == "grep") {
      cmd.args = {"-c", "the", f.path};
    } else {
      cmd.args = {"-k", "-c", f.path};  // compress to stdout, keep dataset
    }
    rig.runtime->Spawn(cmd, [p](proto::Response r) { p->set_value(std::move(r)); });
  }
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    proto::Response r = futures[i].get();
    if (!r.ok()) {
      std::fprintf(stderr, "task failed: %s\n", r.status_message.c_str());
      return 0;
    }
    bytes += rig.dataset.files[i].stored_bytes;
  }
  const double makespan = rig.cores->Makespan();
  return makespan > 0 ? static_cast<double>(bytes) / 1e6 / makespan : 0;
}

}  // namespace

int main() {
  std::printf("\n================================================================\n");
  std::printf("Ablation 1 - dedicated ISPS cores (internal path fixed at 2.5 GB/s)\n");
  std::printf("================================================================\n");
  std::printf("%-8s %14s %14s\n", "cores", "grep MB/s", "bzip2 MB/s");
  for (int cores : {1, 2, 4, 8}) {
    // Fresh rig per measurement: scheduler statistics and meters start clean.
    auto rig_grep = MakeRig(cores, 2.5e9);
    auto rig_bzip2 = MakeRig(cores, 2.5e9);
    if (!rig_grep || !rig_bzip2) return 1;
    const double grep = Throughput(*rig_grep, "grep");
    const double bzip2 = Throughput(*rig_bzip2, "bzip2");
    std::printf("%-8d %14.1f %14.1f%s\n", cores, grep, bzip2,
                cores == 4 ? "   <- CompStor (quad A53)" : "");
  }
  std::printf("\nThroughput scales linearly with dedicated cores for both classes;\n"
              "the paper sizes the ISPS at four A53s as the cost/power sweet spot\n"
              "(<8%% of device cost, single-digit watts).\n");

  std::printf("\n================================================================\n");
  std::printf("Ablation 2 - internal flash data path (4 cores fixed)\n");
  std::printf("================================================================\n");
  std::printf("%-26s %14s %14s\n", "internal stream rate", "grep MB/s", "bzip2 MB/s");
  struct PathPoint {
    double rate;
    const char* label;
  };
  for (const PathPoint& p :
       {PathPoint{0.8e9, "0.8 GB/s (host-link class)"},
        PathPoint{2.5e9, "2.5 GB/s (CompStor)"},
        PathPoint{6.0e9, "6.0 GB/s (widened)"}}) {
    auto rig_grep = MakeRig(4, p.rate);
    auto rig_bzip2 = MakeRig(4, p.rate);
    if (!rig_grep || !rig_bzip2) return 1;
    const double grep = Throughput(*rig_grep, "grep");
    const double bzip2 = Throughput(*rig_bzip2, "bzip2");
    std::printf("%-26s %14.1f %14.1f\n", p.label, grep, bzip2);
  }
  std::printf("\nThe IO-bound workload tracks the dedicated path's bandwidth; the\n"
              "compute-bound one does not care - §III.A's 'high bandwidth, low\n"
              "latency data path between ISPS and the flash media interface'.\n");
  return 0;
}
