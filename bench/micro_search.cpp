// Micro-benchmarks for the search workloads: regex engine, Horspool, grep
// line scanning, and the AWK interpreter.
#include <benchmark/benchmark.h>

#include "apps/awk.hpp"
#include "apps/grep.hpp"
#include "apps/regex.hpp"
#include "workload/textgen.hpp"

namespace {

using namespace compstor;

std::string Corpus(std::size_t bytes) {
  workload::TextGenOptions opt;
  opt.seed = 7;
  opt.approx_bytes = bytes;
  return workload::GenerateBookText(opt);
}

void BM_RegexSearchLiteral(benchmark::State& state) {
  const std::string text = Corpus(256 * 1024);
  auto re = apps::Regex::Compile("kingdom");
  for (auto _ : state) {
    bool hit = re->Search(text);
    benchmark::DoNotOptimize(hit);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_RegexSearchLiteral);

void BM_RegexSearchClass(benchmark::State& state) {
  const std::string text = Corpus(64 * 1024);
  auto re = apps::Regex::Compile("[0-9][0-9][0-9]+");
  for (auto _ : state) {
    bool hit = re->Search(text);
    benchmark::DoNotOptimize(hit);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_RegexSearchClass);

void BM_Horspool(benchmark::State& state) {
  const std::string text = Corpus(256 * 1024);
  for (auto _ : state) {
    auto at = apps::HorspoolFind(text, "government system");
    benchmark::DoNotOptimize(at);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_Horspool);

void BM_GrepLines(benchmark::State& state) {
  const std::string text = Corpus(128 * 1024);
  for (auto _ : state) {
    apps::GrepApp grep;
    apps::AppContext ctx;
    ctx.stdin_data = text;
    auto rc = grep.Run(ctx, {"-c", "the"});
    benchmark::DoNotOptimize(rc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_GrepLines);

void BM_AwkFieldSum(benchmark::State& state) {
  const std::string text = Corpus(64 * 1024);
  auto program = apps::AwkProgram::Compile("{ n += NF } END { print n }");
  for (auto _ : state) {
    auto r = program->Run({{"f", text}}, "", {});
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_AwkFieldSum);

void BM_AwkWordFreq(benchmark::State& state) {
  const std::string text = Corpus(32 * 1024);
  auto program =
      apps::AwkProgram::Compile("{ for (i = 1; i <= NF; i++) f[$i]++ } END { print length(f) }");
  for (auto _ : state) {
    auto r = program->Run({{"f", text}}, "", {});
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_AwkWordFreq);

}  // namespace

BENCHMARK_MAIN();
