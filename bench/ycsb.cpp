// YCSB-style cluster benchmark for the in-storage ordered KV engine.
//
// Core mixes A-F (update-heavy, read-mostly, read-only, read-latest,
// scan-heavy, read-modify-write) run under both uniform and zipfian(0.99)
// request distributions against a >=4-device cluster. Keys are hash-sharded
// across the devices and every operation travels the full stack: structured
// kv_request on a wire-v5 Command, submitted closed-loop in waves through
// Cluster::RunAll under a tenant context, so the tenant-aware frontier and
// the device DRR arbiters sit in the measured path. Per-op latency is the
// device-model elapsed time, folded into a log histogram per (mix, dist).
//
// The comparison arm re-runs the scan-heavy zipfian workload two ways over
// the same store: filter+aggregate pushdown (the device folds matching
// records into a count and ships ~a cache line back) versus a host-side scan
// (the host pulls the store's raw files across PCIe and filters locally —
// what an off-the-shelf SSD forces). Both arms are metered with the PCIe
// link byte counter; the quotient is the paper's data-movement argument for
// in-storage query processing (gate: >= 10x on the scan-heavy zipf mix).
//
// --json [path] writes a schema-v2 BenchReport (default BENCH_ycsb.json).
// Knobs: --devices N (>=4), --records N, --ops N (per mix+dist), --no-gate.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/qos.hpp"
#include "harness.hpp"
#include "kv/types.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/zipf.hpp"

namespace {

using namespace compstor;

constexpr std::uint32_t kTenant = 7;  // all YCSB traffic rides one tenant
constexpr std::size_t kWave = 64;     // closed-loop submission window
constexpr std::uint32_t kScanLimit = 16;   // YCSB E short-range scan length

struct Options {
  std::size_t devices = 4;
  std::uint64_t records = 2000;
  std::uint64_t ops = 240;  // per (mix, distribution)
  bool gate = true;
};

struct Shard {
  std::unique_ptr<bench::DeviceStack> dev;
};

std::string KeyOf(std::uint64_t index) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "user%08" PRIu64, index);
  return buf;
}

/// ~100-byte deterministic payload; hex body so substring predicates have
/// stable selectivity across runs.
std::string ValueOf(std::uint64_t key_index, std::uint64_t version) {
  util::Xoshiro256 rng(key_index * 2654435761u + version);
  std::string v = "f0=";
  static const char kHex[] = "0123456789abcdef";
  for (int i = 0; i < 96; ++i) v += kHex[rng.Below(16)];
  return v;
}

std::size_t ShardOf(std::uint64_t key_index, std::size_t devices) {
  return static_cast<std::size_t>(key_index * 0x9E3779B97F4A7C15ull >> 32) %
         devices;
}

proto::Command KvCommand(kv::Request req) {
  proto::Command cmd;
  cmd.type = proto::CommandType::kExecutable;
  cmd.executable = "kv";
  cmd.kv_request = std::move(req);
  return cmd;
}

/// Loads `records` keys, hash-sharded, in batched put commands.
bool LoadPhase(client::Cluster& cluster, const Options& opt) {
  std::vector<kv::Request> pending(opt.devices);
  std::vector<client::Cluster::WorkItem> work;
  auto flush_pending = [&]() -> bool {
    work.clear();
    for (std::size_t d = 0; d < opt.devices; ++d) {
      if (pending[d].empty()) continue;
      work.push_back({d, KvCommand(std::move(pending[d]))});
      pending[d] = {};
    }
    if (work.empty()) return true;
    auto r = cluster.RunAll(work, qos::TenantContext{kTenant});
    if (!r.ok()) {
      std::fprintf(stderr, "load failed: %s\n", r.status().ToString().c_str());
      return false;
    }
    for (const proto::Minion& m : *r) {
      if (!m.response.ok()) {
        std::fprintf(stderr, "load put failed: %s\n",
                     m.response.status_message.c_str());
        return false;
      }
    }
    return true;
  };
  for (std::uint64_t i = 0; i < opt.records; ++i) {
    kv::Op op;
    op.type = kv::OpType::kPut;
    op.key = KeyOf(i);
    op.value = ValueOf(i, 0);
    pending[ShardOf(i, opt.devices)].ops.push_back(std::move(op));
    if ((i + 1) % (128 * opt.devices) == 0 && !flush_pending()) return false;
  }
  return flush_pending();
}

// ---------------------------------------------------------------------------
// Core mixes

struct Mix {
  const char* name;
  int read_pct;    // point reads (read-latest for D)
  int update_pct;  // overwrite existing key
  int insert_pct;  // append a new key
  int scan_pct;    // short ordered range scan
  int rmw_pct;     // read-modify-write (get + put in one batch)
};

constexpr Mix kMixes[] = {
    {"A", 50, 50, 0, 0, 0},   {"B", 95, 5, 0, 0, 0}, {"C", 100, 0, 0, 0, 0},
    {"D", 95, 0, 5, 0, 0},    {"E", 0, 0, 5, 95, 0}, {"F", 50, 0, 0, 0, 50},
};

struct MixResult {
  std::uint64_t ops_ok = 0;
  std::uint64_t ops_failed = 0;
  double wall_s = 0;
  util::LogHistogram latency_us;  // device-model latency per op
};

/// Samples a key index: zipf rank maps rank 0 to the hottest key; mix D
/// reads "latest" by counting ranks back from the newest insert.
struct KeyChooser {
  bool zipf;
  bool latest;  // mix D read side
  std::uint64_t* population;  // live key count (grows with inserts)
  workload::ZipfDistribution dist;
  util::Xoshiro256 uniform;

  std::uint64_t Next() {
    const std::uint64_t n = *population;
    std::uint64_t idx;
    if (zipf) {
      idx = std::min(dist.Next(), n - 1);
    } else {
      idx = uniform.Below(n);
    }
    return latest ? n - 1 - idx : idx;
  }
};

MixResult RunMix(client::Cluster& cluster, const Options& opt, const Mix& mix,
                 bool zipf, std::uint64_t* population) {
  MixResult out;
  KeyChooser chooser{zipf, std::strcmp(mix.name, "D") == 0, population,
                     workload::ZipfDistribution(*population, /*seed=*/404),
                     util::Xoshiro256(505)};
  util::Xoshiro256 op_rng(606 + static_cast<std::uint64_t>(mix.name[0]) +
                          (zipf ? 1000 : 0));
  std::uint64_t version = 1;

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t issued = 0;
  while (issued < opt.ops) {
    std::vector<client::Cluster::WorkItem> work;
    const std::uint64_t wave = std::min<std::uint64_t>(kWave, opt.ops - issued);
    for (std::uint64_t i = 0; i < wave; ++i, ++issued) {
      const int roll = static_cast<int>(op_rng.Below(100));
      kv::Request req;
      std::uint64_t key_index;
      if (roll < mix.read_pct) {
        key_index = chooser.Next();
        kv::Op op;
        op.type = kv::OpType::kGet;
        op.key = KeyOf(key_index);
        req.ops.push_back(std::move(op));
      } else if (roll < mix.read_pct + mix.update_pct) {
        key_index = chooser.Next();
        kv::Op op;
        op.type = kv::OpType::kPut;
        op.key = KeyOf(key_index);
        op.value = ValueOf(key_index, version++);
        req.ops.push_back(std::move(op));
      } else if (roll < mix.read_pct + mix.update_pct + mix.insert_pct) {
        key_index = (*population)++;
        kv::Op op;
        op.type = kv::OpType::kPut;
        op.key = KeyOf(key_index);
        op.value = ValueOf(key_index, 0);
        req.ops.push_back(std::move(op));
      } else if (roll <
                 mix.read_pct + mix.update_pct + mix.insert_pct + mix.scan_pct) {
        key_index = chooser.Next();
        kv::Op op;
        op.type = kv::OpType::kScan;
        op.key = KeyOf(key_index);
        op.limit = kScanLimit;
        req.ops.push_back(std::move(op));
      } else {  // read-modify-write: one batch, get then put
        key_index = chooser.Next();
        kv::Op get;
        get.type = kv::OpType::kGet;
        get.key = KeyOf(key_index);
        kv::Op put;
        put.type = kv::OpType::kPut;
        put.key = get.key;
        put.value = ValueOf(key_index, version++);
        req.ops.push_back(std::move(get));
        req.ops.push_back(std::move(put));
      }
      work.push_back({ShardOf(key_index, opt.devices), KvCommand(std::move(req))});
    }
    auto r = cluster.RunAll(work, qos::TenantContext{kTenant});
    if (!r.ok()) {
      std::fprintf(stderr, "mix %s wave failed: %s\n", mix.name,
                   r.status().ToString().c_str());
      out.ops_failed += wave;
      continue;
    }
    for (const proto::Minion& m : *r) {
      bool ok = m.response.ok();
      for (const kv::OpResult& res : m.response.kv.results) ok &= res.ok();
      if (ok) {
        ++out.ops_ok;
        out.latency_us.Add(m.response.elapsed_s() * 1e6);
      } else {
        ++out.ops_failed;
      }
    }
  }
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                   .count();
  return out;
}

// ---------------------------------------------------------------------------
// Pushdown vs host-scan comparison arm

struct ScanArmResult {
  std::uint64_t link_bytes = 0;   // PCIe traffic for the whole arm
  std::uint64_t scans = 0;
  std::uint64_t rows_matched = 0;
  bool ok = true;
};

/// Device-side arm: filter+count pushdown; only the fold crosses the link.
ScanArmResult RunPushdownArm(client::Cluster& cluster,
                             std::vector<Shard>& shards, const Options& opt,
                             std::uint64_t population, std::uint64_t scans) {
  ScanArmResult out;
  workload::ZipfDistribution dist(population, /*seed=*/404);
  for (Shard& s : shards) s.dev->ssd->link().ResetStats();
  for (std::uint64_t i = 0; i < scans; ++i) {
    const std::uint64_t key_index = std::min(dist.Next(), population - 1);
    kv::Request req;
    req.predicate_contains = "7a";
    req.aggregate = kv::Aggregate::kCount;
    kv::Op op;
    op.type = kv::OpType::kScan;
    op.key = KeyOf(key_index);
    op.limit = 0;  // fold the whole tail of the shard
    req.ops.push_back(std::move(op));
    auto r = cluster.RunAll({{ShardOf(key_index, opt.devices),
                              KvCommand(std::move(req))}},
                            qos::TenantContext{kTenant});
    if (!r.ok() || r->empty() || !(*r)[0].response.ok()) {
      out.ok = false;
      continue;
    }
    const kv::Reply& reply = (*r)[0].response.kv;
    if (!reply.results.empty()) {
      out.rows_matched +=
          static_cast<std::uint64_t>(reply.results[0].agg_value);
    }
    ++out.scans;
  }
  for (Shard& s : shards) out.link_bytes += s.dev->ssd->link().TotalBytes();
  return out;
}

/// Host-side arm: the same scans without pushdown — the host pulls the
/// store's raw files (sstables + wal) across PCIe and filters locally, the
/// only option an off-the-shelf SSD offers.
ScanArmResult RunHostScanArm(std::vector<Shard>& shards, const Options& opt,
                             std::uint64_t population, std::uint64_t scans) {
  ScanArmResult out;
  workload::ZipfDistribution dist(population, /*seed=*/404);
  for (Shard& s : shards) s.dev->ssd->link().ResetStats();
  for (std::uint64_t i = 0; i < scans; ++i) {
    const std::uint64_t key_index = std::min(dist.Next(), population - 1);
    const std::string start = KeyOf(key_index);
    Shard& s = shards[ShardOf(key_index, opt.devices)];
    fs::Filesystem& fs = s.dev->handle->host_fs();
    auto entries = fs.ReadDir("/kv");
    if (!entries.ok()) {
      out.ok = false;
      continue;
    }
    std::uint64_t matched = 0;
    for (const fs::DirEntry& e : *entries) {
      if (e.name.rfind("sst-", 0) != 0 && e.name != "wal") continue;
      auto data = fs.ReadFileAll("/kv/" + e.name);
      if (!data.ok()) {
        out.ok = false;
        break;
      }
      // Host-side filter stand-in: count predicate hits in the pulled bytes.
      // The cost under measurement is the transfer, not the parse.
      for (std::size_t p = 0; p + 1 < data->size(); ++p) {
        matched += ((*data)[p] == '7' && (*data)[p + 1] == 'a');
      }
    }
    out.rows_matched += matched;
    ++out.scans;
  }
  for (Shard& s : shards) out.link_bytes += s.dev->ssd->link().TotalBytes();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--devices") {
      opt.devices = std::strtoull(next(), nullptr, 10);
    } else if (a == "--records") {
      opt.records = std::strtoull(next(), nullptr, 10);
    } else if (a == "--ops") {
      opt.ops = std::strtoull(next(), nullptr, 10);
    } else if (a == "--no-gate") {
      opt.gate = false;
    } else if (a == "--json") {
      if (i + 1 < argc && argv[i + 1][0] != '-') ++i;  // BenchReport's flag
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s\nusage: ycsb [--devices N] "
                   "[--records N] [--ops N] [--no-gate] [--json [PATH]]\n",
                   a.c_str());
      return 2;
    }
  }
  if (opt.devices < 4) {
    std::fprintf(stderr, "ycsb: --devices must be >= 4 (cluster bench)\n");
    return 2;
  }

  bench::BenchReport report("ycsb", argc, argv);
  report.Config("devices", static_cast<double>(opt.devices));
  report.Config("records", static_cast<double>(opt.records));
  report.Config("ops_per_mix", static_cast<double>(opt.ops));
  report.Config("scan_limit", kScanLimit);
  report.Config("tenant", kTenant);

  bench::PrintHeader("YCSB core mixes over the in-storage KV engine");
  std::printf("devices=%zu records=%" PRIu64 " ops/mix=%" PRIu64 "\n",
              opt.devices, opt.records, opt.ops);

  std::vector<Shard> shards;
  client::Cluster cluster;
  for (std::size_t d = 0; d < opt.devices; ++d) {
    Shard s;
    s.dev = bench::DeviceStack::Make(/*seed=*/21 + d);
    if (!s.dev) {
      std::fprintf(stderr, "device %zu setup failed\n", d);
      return 1;
    }
    cluster.AddDevice(s.dev->handle.get());
    shards.push_back(std::move(s));
  }
  if (!LoadPhase(cluster, opt)) return 1;
  std::printf("loaded %" PRIu64 " records across %zu shards\n", opt.records,
              opt.devices);
  // Registry baseline after load: the report's registry_delta section then
  // shows what the measured mixes alone did (schema v3).
  const auto metrics_after_load = cluster.CollectStats();

  std::printf("\n%-4s %-8s %10s %8s %10s %10s %10s\n", "mix", "dist", "ops",
              "failed", "p50_us", "p95_us", "p99_us");
  bool all_ok = true;
  for (const Mix& mix : kMixes) {
    for (const bool zipf : {false, true}) {
      std::uint64_t population = opt.records;  // D/E inserts grow it per run
      MixResult r = RunMix(cluster, opt, mix, zipf, &population);
      const char* dist = zipf ? "zipf" : "uniform";
      std::printf("%-4s %-8s %10" PRIu64 " %8" PRIu64 " %10.0f %10.0f %10.0f\n",
                  mix.name, dist, r.ops_ok, r.ops_failed,
                  r.latency_us.Quantile(0.50), r.latency_us.Quantile(0.95),
                  r.latency_us.Quantile(0.99));
      all_ok &= r.ops_failed == 0;
      const std::string prefix = std::string(mix.name) + "_" + dist;
      report.Metric(prefix + "_ops_ok", static_cast<double>(r.ops_ok));
      report.Metric(prefix + "_ops_failed", static_cast<double>(r.ops_failed));
      report.Metric(prefix + "_p50_us", r.latency_us.Quantile(0.50));
      report.Metric(prefix + "_p95_us", r.latency_us.Quantile(0.95));
      report.Metric(prefix + "_p99_us", r.latency_us.Quantile(0.99));
      report.Metric(prefix + "_wall_ops_per_s",
                    r.wall_s > 0 ? static_cast<double>(r.ops_ok) / r.wall_s : 0);
    }
  }

  // Every op above rode the tenant-aware frontier; surface the proof.
  std::uint64_t frontier_served = 0;
  for (const qos::TenantCounters& t : cluster.FrontierTenantCounters()) {
    if (t.tenant_id == kTenant) frontier_served = t.served;
  }
  report.Metric("frontier_served", static_cast<double>(frontier_served));
  std::printf("\nfrontier served %" PRIu64 " queries for tenant %u\n",
              frontier_served, kTenant);

  // ---------------------------------------------------------------------
  // Comparison arm: scan-heavy zipfian, pushdown vs host scan.
  bench::PrintHeader("Scan pushdown vs host scan (zipfian, scan-heavy)");
  // Flush every shard so both arms read the same persisted store image (the
  // host arm cannot see device memtables).
  for (std::size_t d = 0; d < opt.devices; ++d) {
    proto::Command flush;
    flush.type = proto::CommandType::kExecutable;
    flush.executable = "kv";
    flush.args = {"flush"};
    auto r = cluster.RunAll({{d, flush}}, qos::TenantContext{kTenant});
    if (!r.ok() || r->empty() || !(*r)[0].response.ok()) {
      std::fprintf(stderr, "shard %zu flush failed\n", d);
      return 1;
    }
  }

  const std::uint64_t kCompareScans = 32;
  ScanArmResult push =
      RunPushdownArm(cluster, shards, opt, opt.records, kCompareScans);
  ScanArmResult host =
      RunHostScanArm(shards, opt, opt.records, kCompareScans);
  all_ok &= push.ok && host.ok;

  const double push_per_scan =
      push.scans ? static_cast<double>(push.link_bytes) / push.scans : 0;
  const double host_per_scan =
      host.scans ? static_cast<double>(host.link_bytes) / host.scans : 0;
  const double savings_x = push_per_scan > 0 ? host_per_scan / push_per_scan : 0;
  std::printf("%-22s %14s %14s\n", "arm", "link bytes", "bytes/scan");
  std::printf("%-22s %14" PRIu64 " %14.0f\n", "pushdown (count)",
              push.link_bytes, push_per_scan);
  std::printf("%-22s %14" PRIu64 " %14.0f\n", "host scan", host.link_bytes,
              host_per_scan);
  std::printf("host-ward byte reduction: %.1fx\n", savings_x);

  report.Metric("pushdown_link_bytes", static_cast<double>(push.link_bytes));
  report.Metric("host_scan_link_bytes", static_cast<double>(host.link_bytes));
  report.Metric("pushdown_bytes_per_scan", push_per_scan);
  report.Metric("host_bytes_per_scan", host_per_scan);
  report.Metric("pushdown_savings_x", savings_x);
  report.TelemetryDelta(metrics_after_load, cluster.CollectStats());

  if (!report.Write()) return 1;
  if (!all_ok) {
    std::fprintf(stderr, "ycsb: some operations failed\n");
    return 1;
  }
  if (opt.gate && savings_x < 10.0) {
    std::fprintf(stderr,
                 "ycsb: pushdown savings %.1fx below the 10x gate\n", savings_x);
    return 1;
  }
  return 0;
}
