// Degraded-mode scaling: reruns the Fig 6 regime with k of n devices failed
// at t0 and measures how aggregate throughput degrades when the cluster's
// circuit breaker + re-dispatch machinery reroutes the dead devices' work
// onto the survivors.
//
// The corpus is replicated on every device (a re-dispatched work item must
// find its input on the fallback device), so unlike fig6_scaling the
// partitioning is by preference only: every item *prefers* device i % n but
// can complete anywhere. With k failures the ideal curve is (n-k)/n of the
// fault-free throughput; the measured curve also pays the detection cost
// (failed first attempts + virtual retry backoff).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness.hpp"
#include "sim/fault.hpp"

namespace {

using namespace compstor;

constexpr std::size_t kDevices = 4;
constexpr std::uint32_t kFilesTotal = 64;
constexpr std::uint64_t kTotalBytes = 4ull << 20;  // 4 MiB corpus (scaled)

struct DegradedRun {
  bool ok = false;
  double mbps = 0;
  std::uint64_t redispatches = 0;
  double backoff_s = 0;
};

/// Runs grep over the replicated corpus with the first `offline` devices
/// failed at t0; returns aggregate throughput (model MB/s).
DegradedRun Run(std::size_t offline) {
  DegradedRun out;
  std::vector<std::unique_ptr<bench::DeviceStack>> devices;
  std::vector<std::unique_ptr<sim::FaultInjector>> injectors;
  client::Cluster cluster;
  for (std::size_t d = 0; d < kDevices; ++d) {
    auto dev = bench::DeviceStack::Make(/*seed=*/100 + d);
    if (!dev) return out;
    injectors.push_back(std::make_unique<sim::FaultInjector>(100 + d));
    cluster.AddDevice(dev->handle.get());
    devices.push_back(std::move(dev));
  }

  // Replicated staging: the same dataset (same seed) on every device, so any
  // surviving device can serve any re-dispatched item.
  std::uint64_t total_input = 0;
  std::vector<std::string> paths;
  for (std::size_t d = 0; d < kDevices; ++d) {
    auto ds = bench::StageDataset(devices[d]->agent->filesystem(), kFilesTotal,
                                  kTotalBytes, /*seed=*/500);
    if (ds.files.empty()) return out;
    if (d == 0) {
      for (const auto& f : ds.files) {
        paths.push_back(f.path);
        total_input += f.stored_bytes;
      }
    }
  }

  // Fail the first k devices before any work is dispatched. Injectors attach
  // after staging so setup IO is not part of the fault schedule.
  for (std::size_t d = 0; d < offline; ++d) {
    injectors[d]->Schedule({.type = sim::FaultType::kDeviceOffline});
  }
  for (std::size_t d = 0; d < kDevices; ++d) {
    devices[d]->ssd->controller().SetFaultInjector(injectors[d].get());
    devices[d]->agent->SetFaultInjector(injectors[d].get());
  }

  client::ClusterPolicy policy;
  policy.call.deadline_s = 1.0;
  // The scaled-down corpus finishes in single-digit virtual milliseconds, so
  // scale the backoff step down with it or the wait between rounds (not the
  // lost capacity) would dominate the curve.
  policy.call.backoff_initial_s = 0.0002;
  policy.circuit_failure_threshold = 2;
  policy.probe_interval = 1u << 20;  // failed devices stay down for the run
  policy.max_rounds = 8;
  cluster.set_policy(policy);

  for (auto& dev : devices) dev->ResetMeters();
  std::vector<client::Cluster::WorkItem> work;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    work.push_back({i % kDevices, bench::MakeAppCommand("grep", paths[i])});
  }
  auto results = cluster.RunAll(work);
  if (!results.ok()) {
    std::fprintf(stderr, "degraded run (k=%zu) failed: %s\n", offline,
                 results.status().ToString().c_str());
    return out;
  }

  // Survivors' makespan plus the virtual backoff the host charged while
  // detecting failures and waiting between re-dispatch rounds.
  double makespan = 0;
  for (auto& dev : devices) {
    makespan = std::max(makespan, dev->agent->cores().Makespan());
  }
  makespan += cluster.retry_backoff_s();
  out.ok = makespan > 0;
  out.mbps = out.ok ? static_cast<double>(total_input) / 1e6 / makespan : 0;
  out.redispatches = cluster.redispatches();
  out.backoff_s = cluster.retry_backoff_s();
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Degraded scaling - throughput with k of 4 CompStors failed at t0");
  std::printf("grep over a replicated %.0f MiB corpus, %u files, %zu devices:\n\n",
              static_cast<double>(kTotalBytes) / (1 << 20), kFilesTotal, kDevices);
  std::printf("%-9s %10s %8s %8s %12s %12s\n", "offline", "MB/s", "(x)",
              "ideal", "redispatch", "backoff(s)");

  double base = 0;
  for (std::size_t k = 0; k < kDevices; ++k) {
    const DegradedRun r = Run(k);
    if (k == 0) base = r.mbps;
    const double rel = base > 0 ? r.mbps / base : 0;
    const double ideal =
        static_cast<double>(kDevices - k) / static_cast<double>(kDevices);
    std::printf("%-9zu %10.1f %7.2fx %7.2fx %12llu %12.4f\n", k, r.mbps, rel,
                ideal, static_cast<unsigned long long>(r.redispatches),
                r.backoff_s);
  }
  std::printf("\nEvery work item completes on a surviving device; the gap to the\n"
              "ideal (n-k)/n column is the failure-detection and backoff cost.\n");
  return 0;
}
