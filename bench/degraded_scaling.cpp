// Degraded-mode scaling: reruns the Fig 6 regime with k of n devices failed
// at t0 and measures how aggregate throughput degrades when the cluster's
// circuit breaker + re-dispatch machinery reroutes the dead devices' work
// onto the survivors.
//
// The corpus is replicated on every device (a re-dispatched work item must
// find its input on the fallback device), so unlike fig6_scaling the
// partitioning is by preference only: every item *prefers* device i % n but
// can complete anywhere. With k failures the ideal curve is (n-k)/n of the
// fault-free throughput; the measured curve also pays the detection cost
// (failed first attempts + virtual retry backoff).
//
// `--scrub` switches to the reliability regime instead: the same grep
// workload on one device, with and without background integrity-scrub
// passes interleaved, measuring what the scrubber's media reads and
// checksum audits cost the foreground (throughput and NVMe p99).
// `--json [path]` writes the machine-readable artifact (BENCH_reliability
// .json in scrub mode).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fs/scrub.hpp"
#include "harness.hpp"
#include "sim/fault.hpp"

namespace {

using namespace compstor;

constexpr std::size_t kDevices = 4;
constexpr std::uint32_t kFilesTotal = 64;
constexpr std::uint64_t kTotalBytes = 4ull << 20;  // 4 MiB corpus (scaled)

struct DegradedRun {
  bool ok = false;
  double mbps = 0;
  std::uint64_t redispatches = 0;
  double backoff_s = 0;
};

/// Runs grep over the replicated corpus with the first `offline` devices
/// failed at t0; returns aggregate throughput (model MB/s).
DegradedRun Run(std::size_t offline) {
  DegradedRun out;
  std::vector<std::unique_ptr<bench::DeviceStack>> devices;
  std::vector<std::unique_ptr<sim::FaultInjector>> injectors;
  client::Cluster cluster;
  for (std::size_t d = 0; d < kDevices; ++d) {
    auto dev = bench::DeviceStack::Make(/*seed=*/100 + d);
    if (!dev) return out;
    injectors.push_back(std::make_unique<sim::FaultInjector>(100 + d));
    cluster.AddDevice(dev->handle.get());
    devices.push_back(std::move(dev));
  }

  // Replicated staging: the same dataset (same seed) on every device, so any
  // surviving device can serve any re-dispatched item.
  std::uint64_t total_input = 0;
  std::vector<std::string> paths;
  for (std::size_t d = 0; d < kDevices; ++d) {
    auto ds = bench::StageDataset(devices[d]->agent->filesystem(), kFilesTotal,
                                  kTotalBytes, /*seed=*/500);
    if (ds.files.empty()) return out;
    if (d == 0) {
      for (const auto& f : ds.files) {
        paths.push_back(f.path);
        total_input += f.stored_bytes;
      }
    }
  }

  // Fail the first k devices before any work is dispatched. Injectors attach
  // after staging so setup IO is not part of the fault schedule.
  for (std::size_t d = 0; d < offline; ++d) {
    injectors[d]->Schedule({.type = sim::FaultType::kDeviceOffline});
  }
  for (std::size_t d = 0; d < kDevices; ++d) {
    devices[d]->ssd->controller().SetFaultInjector(injectors[d].get());
    devices[d]->agent->SetFaultInjector(injectors[d].get());
  }

  client::ClusterPolicy policy;
  policy.call.deadline_s = 1.0;
  // The scaled-down corpus finishes in single-digit virtual milliseconds, so
  // scale the backoff step down with it or the wait between rounds (not the
  // lost capacity) would dominate the curve.
  policy.call.backoff_initial_s = 0.0002;
  policy.circuit_failure_threshold = 2;
  policy.probe_interval = 1u << 20;  // failed devices stay down for the run
  policy.max_rounds = 8;
  cluster.set_policy(policy);

  for (auto& dev : devices) dev->ResetMeters();
  std::vector<client::Cluster::WorkItem> work;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    work.push_back({i % kDevices, bench::MakeAppCommand("grep", paths[i])});
  }
  auto results = cluster.RunAll(work);
  if (!results.ok()) {
    std::fprintf(stderr, "degraded run (k=%zu) failed: %s\n", offline,
                 results.status().ToString().c_str());
    return out;
  }

  // Survivors' makespan plus the virtual backoff the host charged while
  // detecting failures and waiting between re-dispatch rounds.
  double makespan = 0;
  for (auto& dev : devices) {
    makespan = std::max(makespan, dev->agent->cores().Makespan());
  }
  makespan += cluster.retry_backoff_s();
  out.ok = makespan > 0;
  out.mbps = out.ok ? static_cast<double>(total_input) / 1e6 / makespan : 0;
  out.redispatches = cluster.redispatches();
  out.backoff_s = cluster.retry_backoff_s();
  return out;
}

// --- scrub-overhead regime (--scrub) ---------------------------------------

struct ScrubPhase {
  bool ok = false;
  double mbps = 0;
  double p99_us = 0;       // foreground minion task latency
  double makespan_s = 0;
  double internal_busy_s = 0;  // device-internal path occupancy (scrub IO)
  fs::ScrubStats scrub;
  fs::FsIntegrityCounts fs_counts;
  std::vector<telemetry::MetricValue> snapshot;
};

/// One sequential grep sweep over a staged corpus; with `scrub` a full
/// integrity pass (media refresh + checksum audit) runs after every 8th
/// command, sharing the dies and channels with the foreground.
ScrubPhase RunScrubPhase(bool scrub) {
  ScrubPhase out;
  auto dev = bench::DeviceStack::Make(/*seed=*/7);
  if (!dev) return out;
  auto ds = bench::StageDataset(dev->agent->filesystem(), kFilesTotal,
                                kTotalBytes, /*seed=*/500);
  if (ds.files.empty()) return out;
  std::uint64_t input = 0;
  for (const auto& f : ds.files) input += f.stored_bytes;

  dev->ResetMeters();
  for (std::size_t i = 0; i < ds.files.size(); ++i) {
    auto minion = dev->handle->RunMinion(bench::MakeAppCommand("grep", ds.files[i].path));
    if (!minion.ok() || !minion->response.ok()) {
      std::fprintf(stderr, "scrub bench: foreground grep failed\n");
      return out;
    }
    out.makespan_s += minion->response.elapsed_s();
    if (scrub && i % 8 == 7) {
      const Status st = dev->agent->RunScrubPass();
      if (!st.ok()) {
        std::fprintf(stderr, "scrub bench: pass failed: %s\n", st.ToString().c_str());
        return out;
      }
    }
  }
  out.snapshot = dev->ssd->telemetry().Snapshot();
  // Foreground latency: the minion task histogram. Only the grep tasks feed
  // it — the scrubber's internal-ring commands land in nvme.cmd_us, which
  // would dilute that histogram's tail into meaninglessness here.
  for (const auto& m : out.snapshot) {
    if (m.name == "isps.task_us") out.p99_us = m.p99;
  }
  out.scrub = dev->agent->scrubber().Stats();
  out.fs_counts = dev->agent->filesystem().IntegrityCounts();
  out.internal_busy_s = dev->ssd->InternalBusySeconds();
  out.ok = out.makespan_s > 0;
  out.mbps = out.ok ? static_cast<double>(input) / 1e6 / out.makespan_s : 0;
  return out;
}

int RunScrubMode(int argc, char** argv) {
  bench::BenchReport report("reliability", argc, argv);
  bench::PrintHeader(
      "Scrub overhead - foreground grep vs. background integrity scrubbing");
  std::printf("grep over a %.0f MiB corpus, %u files, one device; scrub mode\n"
              "runs a full media-refresh + checksum-audit pass every 8 tasks:\n\n",
              static_cast<double>(kTotalBytes) / (1 << 20), kFilesTotal);

  const ScrubPhase base = RunScrubPhase(/*scrub=*/false);
  const ScrubPhase with = RunScrubPhase(/*scrub=*/true);
  if (!base.ok || !with.ok) return 1;
  const double overhead_pct = base.mbps > 0 ? (base.mbps / with.mbps - 1) * 100 : 0;

  std::printf("%-12s %10s %12s %10s %12s %10s\n", "mode", "MB/s", "p99(us)",
              "passes", "media-blk", "verify-blk");
  std::printf("%-12s %10.1f %12.1f %10llu %12llu %10llu\n", "baseline",
              base.mbps, base.p99_us, 0ull, 0ull, 0ull);
  std::printf("%-12s %10.1f %12.1f %10llu %12llu %10llu\n", "scrub",
              with.mbps, with.p99_us,
              static_cast<unsigned long long>(with.scrub.passes),
              static_cast<unsigned long long>(with.scrub.media_blocks),
              static_cast<unsigned long long>(with.scrub.verify_blocks));
  std::printf("\nForeground cost of continuous scrubbing: %.1f%% throughput, "
              "p99 %.1f -> %.1f us.\n", overhead_pct, base.p99_us, with.p99_us);
  std::printf("Scrub IO kept the internal path busy %.1f ms (vs %.1f ms baseline)\n"
              "without entering the host-visible NVMe queues.\n",
              with.internal_busy_s * 1e3, base.internal_busy_s * 1e3);
  std::printf("Verify failures: %llu (a healthy device must audit clean).\n",
              static_cast<unsigned long long>(with.scrub.verify_failures));

  report.Config("files", kFilesTotal);
  report.Config("corpus_bytes", static_cast<double>(kTotalBytes));
  report.Config("scrub_every_n_tasks", 8);
  report.Metric("baseline_mbps", base.mbps);
  report.Metric("scrub_mbps", with.mbps);
  report.Metric("overhead_pct", overhead_pct);
  report.Metric("baseline_p99_us", base.p99_us);
  report.Metric("scrub_p99_us", with.p99_us);
  report.Metric("scrub_passes", static_cast<double>(with.scrub.passes));
  report.Metric("scrub_media_blocks", static_cast<double>(with.scrub.media_blocks));
  report.Metric("scrub_verify_blocks", static_cast<double>(with.scrub.verify_blocks));
  report.Metric("scrub_verify_failures", static_cast<double>(with.scrub.verify_failures));
  report.Metric("baseline_internal_busy_s", base.internal_busy_s);
  report.Metric("scrub_internal_busy_s", with.internal_busy_s);
  report.Metric("journal_commits", static_cast<double>(with.fs_counts.journal_commits));
  report.Metric("cksum_checks", static_cast<double>(with.fs_counts.cksum_checks));
  report.Metric("cksum_failures", static_cast<double>(with.fs_counts.cksum_failures));
  report.Telemetry(with.snapshot);
  return report.Write() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scrub") == 0) return RunScrubMode(argc, argv);
  }
  bench::BenchReport report("degraded_scaling", argc, argv);
  bench::PrintHeader(
      "Degraded scaling - throughput with k of 4 CompStors failed at t0");
  std::printf("grep over a replicated %.0f MiB corpus, %u files, %zu devices:\n\n",
              static_cast<double>(kTotalBytes) / (1 << 20), kFilesTotal, kDevices);
  std::printf("%-9s %10s %8s %8s %12s %12s\n", "offline", "MB/s", "(x)",
              "ideal", "redispatch", "backoff(s)");

  report.Config("devices", static_cast<double>(kDevices));
  report.Config("files", kFilesTotal);
  report.Config("corpus_bytes", static_cast<double>(kTotalBytes));
  double base = 0;
  for (std::size_t k = 0; k < kDevices; ++k) {
    const DegradedRun r = Run(k);
    if (k == 0) base = r.mbps;
    const double rel = base > 0 ? r.mbps / base : 0;
    const double ideal =
        static_cast<double>(kDevices - k) / static_cast<double>(kDevices);
    std::printf("%-9zu %10.1f %7.2fx %7.2fx %12llu %12.4f\n", k, r.mbps, rel,
                ideal, static_cast<unsigned long long>(r.redispatches),
                r.backoff_s);
    const std::string p = "k" + std::to_string(k) + "_";
    report.Metric(p + "mbps", r.mbps);
    report.Metric(p + "relative", rel);
    report.Metric(p + "redispatches", static_cast<double>(r.redispatches));
    report.Metric(p + "backoff_s", r.backoff_s);
  }
  std::printf("\nEvery work item completes on a surviving device; the gap to the\n"
              "ideal (n-k)/n column is the failure-detection and backoff cost.\n");
  return report.Write() ? 0 : 1;
}
