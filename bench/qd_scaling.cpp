// Queue-depth scaling: sweeps NVMe queue pairs x outstanding commands per
// pair over a 4KiB random-read workload and reports modeled IOPS, makespan,
// and per-channel utilization against the single-queue, single-worker
// baseline (the paper's front-end/back-end subsystem split, §III.A).
//
// The model: back-end workers are parallel resources, so device makespan is
// the max over the workers' virtual clocks; IOPS = completed commands /
// makespan. One queue pair with one worker serializes every command behind
// kCommandOverhead + flash latency; more pairs + workers overlap commands
// across flash channels until the channels (not the front-end) saturate.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "harness.hpp"
#include "util/rng.hpp"

namespace {

using namespace compstor;

constexpr std::uint64_t kWorkingSetPages = 2048;
constexpr std::uint64_t kCommandsPerSubmitter = 512;
constexpr std::uint32_t kPage = 4096;

struct SweepPoint {
  std::size_t queue_pairs = 0;
  std::size_t queue_depth = 0;
  bool ok = false;
  double iops = 0;
  double makespan_s = 0;
  double channel_util_mean = 0;  // busy seconds / makespan, averaged
};

/// Builds a device with the given pipeline shape, preloads the working set,
/// then replays a random 4KiB read storm from `queue_pairs` submitter
/// threads, each keeping `queue_depth` commands in flight.
SweepPoint Run(std::size_t queue_pairs, std::size_t queue_depth) {
  SweepPoint pt;
  pt.queue_pairs = queue_pairs;
  pt.queue_depth = queue_depth;

  ssd::SsdProfile profile = ssd::CompStorProfile(/*capacity_scale=*/0.0015);
  profile.ftl.write_cache_pages = 0;  // reads only; keep the path uniform
  profile.nvme_queue_pairs = queue_pairs;
  profile.nvme_queue_depth = queue_depth;
  // Back-end workers scale with the front-end: the paper's controller runs
  // one back-end engine per queue pair.
  profile.nvme_backend_workers = queue_pairs;
  ssd::Ssd device(profile, /*seed=*/42);

  // Preload (unmeasured): fill the working set once.
  auto buf = std::make_shared<std::vector<std::uint8_t>>(kPage);
  for (std::uint64_t lpn = 0; lpn < kWorkingSetPages; ++lpn) {
    std::fill(buf->begin(), buf->end(), static_cast<std::uint8_t>(lpn * 13 + 7));
    if (!device.host_interface().WriteSync(lpn, 1, buf).status.ok()) return pt;
  }

  // Measured phase: random reads. Each submitter thread gets its own queue
  // pair (thread affinity in the driver) and keeps `queue_depth` futures in
  // flight, the closed-loop equivalent of an fio job at that QD.
  const units::Seconds preload_makespan = device.controller().Makespan();
  std::vector<std::thread> submitters;
  std::atomic<std::uint64_t> completed{0};
  for (std::size_t s = 0; s < queue_pairs; ++s) {
    submitters.emplace_back([&device, &completed, s] {
      util::Xoshiro256 rng(1000 + s);
      std::vector<std::future<nvme::Completion>> window;
      auto reap = [&completed](std::future<nvme::Completion> f) {
        if (f.get().status.ok()) completed.fetch_add(1, std::memory_order_relaxed);
      };
      for (std::uint64_t i = 0; i < kCommandsPerSubmitter; ++i) {
        nvme::Command cmd;
        cmd.opcode = nvme::Opcode::kRead;
        cmd.slba = rng.Next() % kWorkingSetPages;
        cmd.nlb = 1;
        cmd.data = std::make_shared<std::vector<std::uint8_t>>(kPage);
        window.push_back(device.host_interface().Submit(std::move(cmd)));
        if (window.size() >= device.profile().nvme_queue_depth) {
          reap(std::move(window.front()));
          window.erase(window.begin());
        }
      }
      for (auto& f : window) reap(std::move(f));
    });
  }
  for (auto& t : submitters) t.join();

  const double makespan = device.controller().Makespan() - preload_makespan;
  const std::uint64_t ops = completed.load();
  if (makespan <= 0 || ops == 0) return pt;
  pt.ok = true;
  pt.makespan_s = makespan;
  pt.iops = static_cast<double>(ops) / makespan;

  // Channel utilization over the whole run (preload + reads): busy seconds
  // per channel against the device timeline. Rising with queue pairs means
  // the parallelism reaches the flash, not just the front-end.
  const double span = device.controller().Makespan();
  double util_sum = 0;
  const std::uint32_t channels = device.array().channel_count();
  for (std::uint32_t ch = 0; ch < channels; ++ch) {
    util_sum += device.array().ChannelBusySeconds(ch) / span;
  }
  pt.channel_util_mean = util_sum / channels;
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("qd_scaling", argc, argv);
  report.Config("working_set_pages", static_cast<double>(kWorkingSetPages));
  report.Config("commands_per_submitter", static_cast<double>(kCommandsPerSubmitter));
  bench::PrintHeader("Queue-depth scaling - multi-queue NVMe pipeline");
  std::printf("random 4KiB reads, %llu-page working set, %llu commands per"
              " submitter,\nback-end workers = queue pairs:\n\n",
              static_cast<unsigned long long>(kWorkingSetPages),
              static_cast<unsigned long long>(kCommandsPerSubmitter));
  std::printf("%-6s %-5s %12s %12s %10s %10s\n", "qpairs", "qd", "IOPS",
              "makespan(s)", "chan util", "vs 1q/qd1");

  const std::size_t pairs_sweep[] = {1, 2, 4};
  const std::size_t depth_sweep[] = {1, 4, 16, 64};
  double base_iops = 0;
  double best_4q_qd16 = 0;
  for (std::size_t qp : pairs_sweep) {
    for (std::size_t qd : depth_sweep) {
      const SweepPoint pt = Run(qp, qd);
      if (!pt.ok) {
        std::fprintf(stderr, "sweep point %zux%zu failed\n", qp, qd);
        continue;
      }
      if (qp == 1 && qd == 1) base_iops = pt.iops;
      if (qp == 4 && qd >= 16) best_4q_qd16 = std::max(best_4q_qd16, pt.iops);
      const double rel = base_iops > 0 ? pt.iops / base_iops : 0;
      std::printf("%-6zu %-5zu %12.0f %12.6f %9.1f%% %9.2fx\n", qp, qd, pt.iops,
                  pt.makespan_s, pt.channel_util_mean * 100, rel);
      const std::string key = "qp" + std::to_string(qp) + ".qd" + std::to_string(qd);
      report.Metric(key + ".iops", pt.iops);
      report.Metric(key + ".makespan_s", pt.makespan_s);
      report.Metric(key + ".channel_util", pt.channel_util_mean);
    }
    std::printf("\n");
  }

  const double speedup = base_iops > 0 ? best_4q_qd16 / base_iops : 0;
  std::printf("4 queue pairs at QD>=16 vs single queue at QD1: %.2fx %s\n",
              speedup, speedup >= 2.0 ? "(PASS: >= 2x)" : "(FAIL: < 2x)");
  report.Metric("speedup_4q_qd16plus", speedup);
  report.Write();
  return speedup >= 2.0 ? 0 : 1;
}
