// Reproduces Fig 1: the bandwidth mismatch in high-capacity storage servers.
//
// The paper's arithmetic: a webscale storage server carries 64 SSDs of 16
// channels x 533 MB/s each (~545 GB/s of aggregate media bandwidth) behind a
// single PCIe x16 host complex (16 GB/s), i.e. each SSD gets a ~0.25 GB/s
// share of the host link against ~8.5 GB/s of internal media bandwidth.
//
// This bench prints the model table and then *measures* the emulated flash
// array's aggregate media bandwidth and the emulated PCIe link to show the
// same mismatch arises inside the simulator.
#include <cstdio>
#include <memory>
#include <vector>

#include "flash/array.hpp"
#include "harness.hpp"
#include "ssd/profiles.hpp"

namespace {

using namespace compstor;

void PrintModelTable() {
  bench::PrintHeader(
      "Fig 1 - Bandwidth mismatch in high-capacity storage servers (model)");
  const int ssds = 64;
  const double ch_bw = 533e6;
  const int channels = 16;
  const double per_ssd_media = channels * ch_bw;
  const double media_total = ssds * per_ssd_media;
  const double pcie_x16 = 16e9;
  const double per_ssd_share = pcie_x16 / ssds;

  std::printf("%-44s %10.1f GB/s\n", "Per-SSD media bandwidth (16ch x 533MB/s)",
              per_ssd_media / 1e9);
  std::printf("%-44s %10.1f GB/s\n", "Aggregate media bandwidth (64 SSDs)",
              media_total / 1e9);
  std::printf("%-44s %10.1f GB/s\n", "Host PCIe complex (x16)", pcie_x16 / 1e9);
  std::printf("%-44s %10.2f GB/s\n", "Per-SSD share of the host link",
              per_ssd_share / 1e9);
  std::printf("%-44s %9.0fx\n", "Mismatch: media vs host link (server)",
              media_total / pcie_x16);
  std::printf("%-44s %9.0fx\n", "Mismatch: media vs link share (per SSD)",
              per_ssd_media / per_ssd_share);
}

void MeasureEmulatedDevice(bench::BenchReport& report) {
  bench::PrintHeader("Fig 1 - measured on the emulated CompStor device");

  auto dev = bench::DeviceStack::Make(/*seed=*/7);
  if (!dev) {
    std::fprintf(stderr, "device setup failed\n");
    return;
  }

  // Write enough pages to touch every channel, then read them back through
  // the internal path, and measure model-time per byte.
  const std::uint32_t pages = 2048;
  const std::uint32_t page = dev->ssd->ftl().page_data_bytes();
  std::vector<std::uint8_t> buf(page, 0x5A);
  for (std::uint32_t i = 0; i < pages; ++i) {
    if (!dev->ssd->ftl().WritePage(i, buf).ok()) return;
  }
  // Push everything out of the fast-release buffer: the measurement is
  // about the NAND media interface, not controller DRAM.
  if (!dev->ssd->ftl().Flush().ok()) return;

  flash::ArrayStats before = dev->ssd->array().Stats();
  ftl::IoCost cost;
  for (std::uint32_t i = 0; i < pages; ++i) {
    if (!dev->ssd->InternalRead(i, buf, &cost).ok()) return;
  }
  flash::ArrayStats after = dev->ssd->array().Stats();

  const double bytes = static_cast<double>(pages) * page;
  // Channel-parallel media time: busiest die's clock advance bounds it.
  const double media_time = after.busiest_die_time - before.busiest_die_time;
  const double media_bw = bytes / media_time;
  const double link_bw = dev->ssd->link().profile().bandwidth_bytes_per_s;

  std::printf("%-44s %10.1f GB/s\n", "Aggregate media interface (model peak)",
              dev->ssd->array().AggregateMediaBandwidth() / 1e9);
  std::printf("%-44s %10.1f GB/s\n", "Achieved media read bandwidth (measured)",
              media_bw / 1e9);
  std::printf("%-44s %10.1f GB/s\n", "Device PCIe link (gen3 x4)", link_bw / 1e9);
  std::printf("%-44s %9.1fx\n", "Mismatch inside one device (peak/link)",
              dev->ssd->array().AggregateMediaBandwidth() / link_bw);
  std::printf("\nIn-situ processing reads at media speed and ships only results\n"
              "across the link - the premise of the CompStor design.\n");

  report.Config("seed", 7);
  report.Config("pages", pages);
  report.Config("page_data_bytes", page);
  report.Metric("media_peak_gbps", dev->ssd->array().AggregateMediaBandwidth() / 1e9);
  report.Metric("media_read_gbps", media_bw / 1e9);
  report.Metric("link_gbps", link_bw / 1e9);
  report.Metric("device_mismatch_x",
                dev->ssd->array().AggregateMediaBandwidth() / link_bw);
  report.Telemetry(dev->ssd->telemetry().Snapshot());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("fig1_bandwidth", argc, argv);
  PrintModelTable();
  MeasureEmulatedDevice(report);
  return report.Write() ? 0 : 1;
}
