// Micro-benchmarks for the storage substrates: ECC page codec, FTL page IO
// (including GC pressure), filesystem file IO, and the concurrency
// primitives backing the NVMe queues.
#include <benchmark/benchmark.h>

#include <memory>

#include "ecc/page_codec.hpp"
#include "fs/filesystem.hpp"
#include "ftl/ftl.hpp"
#include "ssd/profiles.hpp"
#include "ssd/ssd.hpp"
#include "util/mpmc_queue.hpp"
#include "util/rng.hpp"
#include "util/spsc_ring.hpp"

namespace {

using namespace compstor;

void BM_EccEncodePage(benchmark::State& state) {
  ecc::PageCodec codec(4096, 544);
  std::vector<std::uint8_t> data(4096);
  util::Xoshiro256 rng(1);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  std::vector<std::uint8_t> spare(544);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Encode(data, spare));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * 4096));
}
BENCHMARK(BM_EccEncodePage);

void BM_EccDecodeCleanPage(benchmark::State& state) {
  ecc::PageCodec codec(4096, 544);
  std::vector<std::uint8_t> data(4096);
  util::Xoshiro256 rng(2);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  std::vector<std::uint8_t> spare(544);
  (void)codec.Encode(data, spare);
  for (auto _ : state) {
    auto d = data;
    auto s = spare;
    benchmark::DoNotOptimize(codec.Decode(d, s));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * 4096));
}
BENCHMARK(BM_EccDecodeCleanPage);

void BM_FtlWrite4K(benchmark::State& state) {
  auto profile = ssd::TestProfile();
  flash::Array array(profile.geometry, profile.timing, profile.reliability);
  ftl::Ftl ftl(&array, profile.ftl);
  std::vector<std::uint8_t> page(4096, 0x3C);
  util::Xoshiro256 rng(3);
  const std::uint64_t span = ftl.user_pages() / 2;  // overwrites force GC
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.WritePage(rng.Below(span), page));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * 4096));
  state.counters["WAF"] = ftl.Stats().Waf();
}
BENCHMARK(BM_FtlWrite4K);

void BM_FtlRead4K(benchmark::State& state) {
  auto profile = ssd::TestProfile();
  flash::Array array(profile.geometry, profile.timing, profile.reliability);
  ftl::Ftl ftl(&array, profile.ftl);
  std::vector<std::uint8_t> page(4096, 0x3C);
  const std::uint64_t span = 512;
  for (std::uint64_t i = 0; i < span; ++i) (void)ftl.WritePage(i, page);
  util::Xoshiro256 rng(4);
  std::vector<std::uint8_t> out(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.ReadPage(rng.Below(span), out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * 4096));
}
BENCHMARK(BM_FtlRead4K);

void BM_FsWriteReadFile(benchmark::State& state) {
  ssd::Ssd ssd(ssd::TestProfile());
  (void)fs::Filesystem::Format(&ssd.internal_block_device());
  fs::Filesystem filesystem(&ssd.internal_block_device(), ssd.fs_mutex());
  (void)filesystem.Mount();
  const std::string blob(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(filesystem.WriteFile("/bench.bin", blob));
    benchmark::DoNotOptimize(filesystem.ReadFileAll("/bench.bin"));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * state.range(0) * 2);
}
BENCHMARK(BM_FsWriteReadFile)->Arg(4096)->Arg(256 * 1024);

void BM_MpmcQueuePingPong(benchmark::State& state) {
  util::MpmcQueue<int> q(256);
  for (auto _ : state) {
    q.TryPush(1);
    benchmark::DoNotOptimize(q.TryPop());
  }
}
BENCHMARK(BM_MpmcQueuePingPong);

void BM_SpscRingPingPong(benchmark::State& state) {
  util::SpscRing<int> ring(256);
  for (auto _ : state) {
    ring.TryPush(1);
    benchmark::DoNotOptimize(ring.TryPop());
  }
}
BENCHMARK(BM_SpscRingPingPong);

void BM_NvmeWriteReadRoundTrip(benchmark::State& state) {
  ssd::Ssd ssd(ssd::TestProfile());
  auto buf = std::make_shared<std::vector<std::uint8_t>>(4096, 0x77);
  std::uint64_t lba = 0;
  const std::uint64_t span = ssd.ftl().user_pages() / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssd.host_interface().WriteSync(lba % span, 1, buf));
    benchmark::DoNotOptimize(ssd.host_interface().ReadSync(lba % span, 1, buf));
    ++lba;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * 8192));
}
BENCHMARK(BM_NvmeWriteReadRoundTrip);

}  // namespace

BENCHMARK_MAIN();
