// Micro-benchmarks for the compression codecs (real wall-clock throughput of
// the emulation itself, not model time).
#include <benchmark/benchmark.h>

#include "apps/bwzip.hpp"
#include "apps/deflate.hpp"
#include "apps/huffman.hpp"
#include "util/bitstream.hpp"
#include "workload/textgen.hpp"

namespace {

using namespace compstor;

std::vector<std::uint8_t> TextInput(std::size_t bytes) {
  workload::TextGenOptions opt;
  opt.seed = 99;
  opt.approx_bytes = bytes;
  const std::string text = workload::GenerateBookText(opt);
  return {text.begin(), text.end()};
}

void BM_CzipCompress(benchmark::State& state) {
  const auto input = TextInput(256 * 1024);
  apps::CzipOptions opt;
  opt.level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto z = apps::CzipCompress(input, opt);
    benchmark::DoNotOptimize(z);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * input.size()));
}
BENCHMARK(BM_CzipCompress)->Arg(1)->Arg(6)->Arg(9);

void BM_CzipDecompress(benchmark::State& state) {
  const auto input = TextInput(256 * 1024);
  const auto z = apps::CzipCompress(input);
  for (auto _ : state) {
    auto back = apps::CzipDecompress(*z);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * input.size()));
}
BENCHMARK(BM_CzipDecompress);

void BM_BwzCompress(benchmark::State& state) {
  const auto input = TextInput(128 * 1024);
  apps::BwzOptions opt;
  opt.block_size = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto z = apps::BwzCompress(input, opt);
    benchmark::DoNotOptimize(z);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * input.size()));
}
BENCHMARK(BM_BwzCompress)->Arg(100 * 1024)->Arg(400 * 1024);

void BM_BwzDecompress(benchmark::State& state) {
  const auto input = TextInput(128 * 1024);
  const auto z = apps::BwzCompress(input);
  for (auto _ : state) {
    auto back = apps::BwzDecompress(*z);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * input.size()));
}
BENCHMARK(BM_BwzDecompress);

void BM_BwtForward(benchmark::State& state) {
  const auto input = TextInput(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::uint32_t primary;
    auto last = apps::BwtForward(input, &primary);
    benchmark::DoNotOptimize(last);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * input.size()));
}
BENCHMARK(BM_BwtForward)->Arg(16 * 1024)->Arg(64 * 1024);

void BM_HuffmanBuildCode(benchmark::State& state) {
  std::vector<std::uint64_t> freqs(288);
  for (std::size_t i = 0; i < freqs.size(); ++i) freqs[i] = (i * 2654435761u) % 10000 + 1;
  for (auto _ : state) {
    auto code = apps::BuildCanonicalCode(freqs, 15);
    benchmark::DoNotOptimize(code);
  }
}
BENCHMARK(BM_HuffmanBuildCode);

}  // namespace

BENCHMARK_MAIN();
