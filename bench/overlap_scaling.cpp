// Compute/flash overlap under the chunked streaming data path (DESIGN.md
// §11): single-stream makespan and peak DRAM vs chunk size.
//
// For each chunk size the bench runs the workloads one task at a time on the
// ISPS and compares the modeled elapsed time against the serial baseline the
// pre-streaming charging used (compute + full data-path transfer). With
// depth-1 read-ahead the next chunk's flash read runs while the core chews
// on the current one, so elapsed must come out strictly below the serial
// sum; the gap is the overlap saving. Peak DRAM (the budget high-water) must
// stay flat in the chunk size — and orders of magnitude below the 8 GB ISPS
// budget — because no stage ever buffers a whole file.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "energy/cost_model.hpp"
#include "fs/filesystem.hpp"
#include "harness.hpp"
#include "isps/cores.hpp"
#include "isps/profile.hpp"
#include "isps/task_runtime.hpp"
#include "ssd/profiles.hpp"
#include "ssd/ssd.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace compstor;

constexpr std::uint32_t kFiles = 8;
constexpr std::uint64_t kBytes = 8u << 20;

struct Rig {
  std::unique_ptr<ssd::Ssd> ssd;
  std::unique_ptr<fs::Filesystem> fs;
  std::unique_ptr<apps::Registry> registry;
  std::unique_ptr<isps::CoreEmulator> cores;
  std::unique_ptr<isps::TaskRuntime> runtime;
  workload::Dataset dataset;
};

std::unique_ptr<Rig> MakeRig() {
  auto rig = std::make_unique<Rig>();
  rig->ssd = std::make_unique<ssd::Ssd>(ssd::CompStorProfile(0.002));
  if (!fs::Filesystem::Format(&rig->ssd->host_block_device()).ok()) return nullptr;
  rig->fs = std::make_unique<fs::Filesystem>(&rig->ssd->internal_block_device(),
                                             rig->ssd->fs_mutex());
  if (!rig->fs->Mount().ok()) return nullptr;
  rig->registry = apps::Registry::WithBuiltins();
  rig->cores = std::make_unique<isps::CoreEmulator>(isps::IspsCpuProfile(),
                                                    &rig->ssd->meter());
  rig->runtime = std::make_unique<isps::TaskRuntime>(
      rig->cores.get(), rig->fs.get(), rig->registry.get(), /*internal_path=*/true);

  workload::DatasetSpec spec;
  spec.num_files = kFiles;
  spec.total_bytes = kBytes;
  spec.seed = 91;
  spec.uniform_sizes = true;
  auto ds = workload::BuildDataset(rig->fs.get(), spec);
  if (!ds.ok()) return nullptr;
  rig->dataset = *ds;
  return rig;
}

struct Point {
  double makespan_s = 0;   // in-situ elapsed, tasks run single-stream
  double serial_s = 0;     // compute + full transfer (no-overlap baseline)
  std::uint64_t peak_dram = 0;
  bool ok = true;
};

Point Measure(Rig& rig, const std::string& app, std::size_t chunk_bytes) {
  Point p;
  rig.runtime->SetChunkBytes(chunk_bytes);
  rig.runtime->budget()->ResetHighwater();
  const energy::IoRates rates;
  for (const auto& f : rig.dataset.files) {
    proto::Command cmd;
    cmd.type = proto::CommandType::kExecutable;
    cmd.executable = app;
    cmd.args = app == "grep" ? std::vector<std::string>{"-c", "the", f.path}
                             : std::vector<std::string>{"-k", "-c", f.path};
    proto::Response r = rig.runtime->SpawnSync(cmd);
    if (!r.ok()) {
      std::fprintf(stderr, "task failed: %s\n", r.status_message.c_str());
      p.ok = false;
      return p;
    }
    p.makespan_s += r.end_time_s - r.start_time_s;
    p.serial_s += r.cpu_seconds +
                  energy::IoSeconds(r.bytes_read + r.bytes_written,
                                    /*internal_path=*/true, rates);
  }
  p.peak_dram = rig.runtime->budget()->highwater();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("overlap_scaling", argc, argv);
  report.Config("files", static_cast<double>(kFiles));
  report.Config("total_bytes", static_cast<double>(kBytes));

  std::printf("\n=========================================================================\n");
  std::printf("Streaming overlap - single-stream makespan & peak DRAM vs chunk size\n");
  std::printf("(in-situ path, depth-1 read-ahead; serial = compute + full flash read)\n");
  std::printf("=========================================================================\n");

  bool all_overlap = true;
  std::uint64_t worst_peak = 0;
  std::uint64_t limit = 0;
  for (const char* app : {"grep", "gzip"}) {
    std::printf("\n%s\n%-12s %14s %14s %10s %14s\n", app, "chunk", "in-situ s",
                "serial s", "saving", "peak DRAM KiB");
    for (std::size_t chunk : {std::size_t{64} << 10, std::size_t{256} << 10,
                              std::size_t{1} << 20, std::size_t{4} << 20}) {
      // Fresh rig per point: clean clocks, meters, and budget accounting.
      auto rig = MakeRig();
      if (!rig) return 1;
      const Point p = Measure(*rig, app, chunk);
      if (!p.ok) return 1;
      limit = rig->runtime->budget()->limit();
      const double saving = p.serial_s > 0 ? 1.0 - p.makespan_s / p.serial_s : 0;
      std::printf("%-12zu %14.6f %14.6f %9.1f%% %14llu\n", chunk, p.makespan_s,
                  p.serial_s, saving * 100,
                  static_cast<unsigned long long>(p.peak_dram >> 10));
      // A chunk at least the file size degenerates to one transfer with
      // nothing to read ahead behind, so only smaller chunks must overlap.
      if (chunk * 2 <= kBytes / kFiles) {
        all_overlap = all_overlap && p.makespan_s < p.serial_s;
      }
      if (p.peak_dram > worst_peak) worst_peak = p.peak_dram;

      const std::string suffix = std::string(app) + "_" + std::to_string(chunk >> 10) + "k";
      report.Metric("makespan_s_" + suffix, p.makespan_s);
      report.Metric("serial_s_" + suffix, p.serial_s);
      report.Metric("peak_dram_bytes_" + suffix, static_cast<double>(p.peak_dram));
    }
  }

  std::printf("\nDRAM budget: peak %llu KiB of %llu MiB (%.4f%%) — streaming keeps the\n"
              "working set at ring + chunk granularity regardless of file size.\n",
              static_cast<unsigned long long>(worst_peak >> 10),
              static_cast<unsigned long long>(limit >> 20),
              limit > 0 ? 100.0 * static_cast<double>(worst_peak) /
                              static_cast<double>(limit)
                        : 0.0);
  std::printf("%s\n", all_overlap
                          ? "In-situ makespan is strictly below compute + flash-read serial "
                            "sum at every point: the internal path overlaps transfer with "
                            "compute."
                          : "WARNING: some point did not overlap (makespan >= serial sum).");

  report.Metric("all_points_overlap", all_overlap ? 1 : 0);
  report.Metric("worst_peak_dram_bytes", static_cast<double>(worst_peak));
  report.Metric("dram_limit_bytes", static_cast<double>(limit));
  if (!report.Write()) return 1;
  return all_overlap ? 0 : 1;
}
