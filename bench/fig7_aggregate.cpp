// Reproduces Fig 7: aggregated system performance for bzip2 compression when
// the Xeon host and N CompStors work together.
//
// The corpus is split between the host and the devices proportionally to
// their modeled compute rates (the paper "distributed the whole set of the
// input files between the host and several CompStors"), everything runs
// concurrently, and host / device throughputs are reported separately plus
// combined — showing in-situ processing *adds* compute comparable to the
// host as devices accumulate.
#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "harness.hpp"

namespace {

using namespace compstor;

constexpr std::uint64_t kTotalBytes = 10ull << 20;  // 10 MiB corpus
constexpr std::uint32_t kFilesTotal = 240;  // fine-grained like the 348 books
const std::vector<std::size_t> kDeviceCounts = {0, 1, 2, 4, 8};

struct AggregateResult {
  double host_mbps = 0;
  double devices_mbps = 0;
  double combined() const { return host_mbps + devices_mbps; }
};

AggregateResult RunAggregate(std::size_t n_devices) {
  // Modeled single-core rates decide the host/device split (bytes/s).
  const energy::CpuProfile xeon = isps::XeonCpuProfile();
  const energy::CpuProfile a53 = isps::IspsCpuProfile();
  const double cpb = energy::ReferenceCyclesPerUnit("bzip2");
  const double host_rate =
      xeon.cores * xeon.frequency_hz * xeon.ipc_factor / cpb;
  const double dev_rate = a53.cores * a53.frequency_hz * a53.ipc_factor /
                          (cpb / energy::InOrderAffinity("bzip2"));
  const double dev_fraction =
      n_devices == 0
          ? 0
          : (n_devices * dev_rate) / (host_rate + n_devices * dev_rate);

  const std::uint32_t dev_files_total = static_cast<std::uint32_t>(
      kFilesTotal * dev_fraction + 0.5);
  const std::uint32_t host_files = kFilesTotal - dev_files_total;

  // Host stack with its share.
  auto host = bench::HostStack::Make(/*seed=*/42);
  if (!host) return {};
  std::uint64_t host_bytes = 0;
  std::vector<std::string> host_paths;
  if (host_files > 0) {
    workload::DatasetSpec spec;
    spec.num_files = host_files;
    spec.total_bytes = kTotalBytes * host_files / kFilesTotal;
    spec.seed = 900;
    spec.uniform_sizes = true;
    auto ds = workload::BuildDataset(&host->exec->filesystem(), spec);
    if (!ds.ok()) return {};
    for (const auto& f : ds->files) {
      host_paths.push_back(f.path);
      host_bytes += f.stored_bytes;
    }
  }

  // Devices with their shares.
  std::vector<std::unique_ptr<bench::DeviceStack>> devices;
  std::vector<std::vector<std::string>> dev_paths(n_devices);
  std::uint64_t dev_bytes = 0;
  for (std::size_t d = 0; d < n_devices; ++d) {
    auto dev = bench::DeviceStack::Make(/*seed=*/200 + d);
    if (!dev) return {};
    const std::uint32_t files = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(dev_files_total / n_devices));
    workload::DatasetSpec spec;
    spec.num_files = files;
    spec.total_bytes = kTotalBytes * files / kFilesTotal;
    spec.seed = 910 + d;
    spec.uniform_sizes = true;
    auto ds = workload::BuildDataset(&dev->agent->filesystem(), spec);
    if (!ds.ok()) return {};
    for (const auto& f : ds->files) {
      dev_paths[d].push_back(f.path);
      dev_bytes += f.stored_bytes;
    }
    devices.push_back(std::move(dev));
  }

  // Run both sides concurrently: host tasks on the executor's 16 threads,
  // device tasks as minions.
  host->ResetMeters();
  for (auto& dev : devices) dev->ResetMeters();

  std::vector<std::future<proto::Response>> host_futures;
  for (const std::string& path : host_paths) {
    auto promise = std::make_shared<std::promise<proto::Response>>();
    host_futures.push_back(promise->get_future());
    host->exec->runtime().Spawn(
        bench::MakeAppCommand("bzip2", path),
        [promise](proto::Response r) { promise->set_value(std::move(r)); });
  }
  std::vector<client::MinionFuture> dev_futures;
  for (std::size_t d = 0; d < n_devices; ++d) {
    for (const std::string& path : dev_paths[d]) {
      dev_futures.push_back(
          devices[d]->handle->SendMinion(bench::MakeAppCommand("bzip2", path)));
    }
  }
  for (auto& f : host_futures) {
    if (!f.get().ok()) std::fprintf(stderr, "host bzip2 task failed\n");
  }
  for (auto& f : dev_futures) {
    auto m = f.Get();
    if (!m.ok() || !m->response.ok()) std::fprintf(stderr, "device bzip2 task failed\n");
  }

  AggregateResult result;
  const double host_makespan = host->exec->cores().Makespan();
  if (host_makespan > 0 && host_bytes > 0) {
    result.host_mbps = static_cast<double>(host_bytes) / 1e6 / host_makespan;
  }
  double dev_makespan = 0;
  for (auto& dev : devices) {
    dev_makespan = std::max(dev_makespan, dev->agent->cores().Makespan());
  }
  if (dev_makespan > 0 && dev_bytes > 0) {
    result.devices_mbps = static_cast<double>(dev_bytes) / 1e6 / dev_makespan;
  }
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig 7 - Aggregated host + CompStor performance (bzip2 compression)");
  std::printf("%-10s %12s %14s %12s\n", "devices", "host MB/s", "devices MB/s",
              "total MB/s");
  double host_alone = 0;
  for (std::size_t n : kDeviceCounts) {
    AggregateResult r = RunAggregate(n);
    if (n == 0) host_alone = r.host_mbps;
    std::printf("%-10zu %12.1f %14.1f %12.1f\n", n, r.host_mbps, r.devices_mbps,
                r.combined());
  }
  std::printf("\nHost-alone throughput: %.1f MB/s. Each CompStor adds its 4-core\n"
              "A53 throughput; with enough devices the in-storage aggregate\n"
              "rivals the host CPU — the paper's argument that in-situ compute\n"
              "'augments' rather than replaces the server.\n",
              host_alone);
  return 0;
}
