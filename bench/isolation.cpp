// Verifies the paper's §III claim quantitatively: dedicated ISPS hardware
// means in-situ processing does NOT degrade the performance of common
// storage functions (read, write, trim).
//
// Measures host-side NVMe command latency (model time) for 4 KiB random
// reads, 4 KiB writes, 128 KiB sequential reads, and trims — first on an
// idle device, then while the ISPS is saturated with compression minions —
// and reports the deltas.
#include <cstdio>
#include <memory>
#include <vector>

#include "harness.hpp"
#include "workload/textgen.hpp"
#include "util/rng.hpp"

namespace {

using namespace compstor;

struct LatencyRow {
  const char* name;
  double idle_us = 0;
  double busy_us = 0;
};

// Raw block IO targets the top of the LBA space, far above anything the
// filesystem allocator (which fills from the bottom) has touched — mixing
// raw IO into mounted-filesystem blocks would corrupt it.
constexpr std::uint64_t kRawSpan = 512;

std::uint64_t RawBase(bench::DeviceStack& dev) {
  return dev.ssd->ftl().user_pages() - kRawSpan;
}

double MeasureOp(bench::DeviceStack& dev, const char* op, util::Xoshiro256& rng) {
  constexpr int kOps = 48;
  // Each op type works a disjoint quarter of the raw span so one phase's
  // writes/trims cannot change what another phase's reads observe.
  const std::uint64_t quarter = kRawSpan / 4;
  const std::uint64_t base = RawBase(dev);
  double total = 0;
  for (int i = 0; i < kOps; ++i) {
    nvme::Completion cqe;
    if (std::string_view(op) == "read4k") {
      auto buf = std::make_shared<std::vector<std::uint8_t>>(4096);
      cqe = dev.ssd->host_interface().ReadSync(base + rng.Below(quarter), 1, buf);
    } else if (std::string_view(op) == "write4k") {
      auto buf = std::make_shared<std::vector<std::uint8_t>>(4096, 0xAB);
      cqe = dev.ssd->host_interface().WriteSync(base + quarter + rng.Below(quarter), 1, buf);
    } else if (std::string_view(op) == "read128k") {
      auto buf = std::make_shared<std::vector<std::uint8_t>>(32 * 4096);
      cqe = dev.ssd->host_interface().ReadSync(
          base + 2 * quarter + rng.Below(quarter - 32), 32, buf);
    } else {  // trim
      cqe = dev.ssd->host_interface().TrimSync(base + 3 * quarter + rng.Below(quarter), 1);
    }
    if (!cqe.status.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", op, cqe.status.ToString().c_str());
      return 0;
    }
    total += cqe.latency;
  }
  return total / kOps * 1e6;  // us
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Isolation - host IO performance with and without in-situ load");

  auto dev = bench::DeviceStack::Make(/*seed=*/5);
  if (!dev) return 1;

  // Stage the grind file through the filesystem first, then pre-write the
  // raw LBA range the IO measurements touch (top of the LBA space).
  workload::TextGenOptions text;
  text.approx_bytes = 512 * 1024;
  const std::string grind = workload::GenerateBookText(text);
  Status staged = dev->agent->filesystem().WriteFile("/grind.txt", grind);
  if (!staged.ok()) {
    std::fprintf(stderr, "staging failed: %s\n", staged.ToString().c_str());
    return 1;
  }
  {
    auto buf = std::make_shared<std::vector<std::uint8_t>>(4096, 0x11);
    const std::uint64_t base = RawBase(*dev);
    for (std::uint64_t lba = base; lba < base + kRawSpan; ++lba) {
      nvme::Completion c = dev->ssd->host_interface().WriteSync(lba, 1, buf);
      if (!c.status.ok()) {
        std::fprintf(stderr, "prefill failed: %s\n", c.status.ToString().c_str());
        return 1;
      }
    }
    // Drain the write buffer so the measured reads exercise the NAND path
    // rather than controller DRAM.
    if (!dev->ssd->ftl().Flush().ok()) return 1;
  }

  std::vector<LatencyRow> rows = {
      {"4K random read"}, {"4K random write"}, {"128K sequential read"}, {"trim"}};
  const char* ops[] = {"read4k", "write4k", "read128k", "trim"};

  util::Xoshiro256 rng(77);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].idle_us = MeasureOp(*dev, ops[i], rng);
  }

  // Saturate the ISPS: more concurrent compression minions than cores.
  std::vector<client::MinionFuture> background;
  for (int i = 0; i < 8; ++i) {
    proto::Command cmd;
    cmd.type = proto::CommandType::kShellCommand;
    cmd.command_line = "gzip -k -c /grind.txt | wc -c";
    background.push_back(dev->handle->SendMinion(cmd));
  }

  util::Xoshiro256 rng2(77);  // identical op sequence
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].busy_us = MeasureOp(*dev, ops[i], rng2);
  }
  for (auto& f : background) {
    auto m = f.Get();
    if (!m.ok()) std::fprintf(stderr, "background minion failed\n");
  }

  std::printf("%-24s %12s %12s %10s\n", "operation", "idle (us)", "busy (us)",
              "delta");
  for (const LatencyRow& r : rows) {
    const double delta = r.idle_us > 0 ? (r.busy_us - r.idle_us) / r.idle_us * 100 : 0;
    std::printf("%-24s %12.1f %12.1f %+9.1f%%\n", r.name, r.idle_us, r.busy_us, delta);
  }
  std::printf("\nThe ISPS has its own cores and its own flash data path, so host\n"
              "IO latency is unchanged while 8 compression minions run — the\n"
              "paper's 'no degradation' design property.\n");
  return 0;
}
