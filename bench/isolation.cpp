// Verifies the paper's §III claim quantitatively: dedicated ISPS hardware
// means in-situ processing does NOT degrade the performance of common
// storage functions (read, write, trim).
//
// Part 1 measures host-side NVMe command latency (model time) for 4 KiB
// random reads, 4 KiB writes, 128 KiB sequential reads, and trims — first on
// an idle device, then while the ISPS is saturated with compression minions —
// and reports the deltas.
//
// Part 2 is the multi-tenant noisy-neighbor experiment: an interactive grep
// tenant shares an 8-device cluster with a bulk compression tenant that keeps
// >1k queries in flight via a closed-loop load. With weighted-fair QoS (the
// default) the interactive tenant's median sojourn stays within an SLO
// derived from its solo baseline and the bulk service granularity; with
// `--no-qos` (FIFO at the frontier, round-robin at the device arbiter and
// core scheduler — the pre-QoS control arm) the same run demonstrably
// violates it.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "client/monitor.hpp"
#include "common/qos.hpp"
#include "harness.hpp"
#include "workload/textgen.hpp"
#include "util/rng.hpp"

namespace {

using namespace compstor;

struct LatencyRow {
  const char* name;
  double idle_us = 0;
  double busy_us = 0;
};

// Raw block IO targets the top of the LBA space, far above anything the
// filesystem allocator (which fills from the bottom) has touched — mixing
// raw IO into mounted-filesystem blocks would corrupt it.
constexpr std::uint64_t kRawSpan = 512;

std::uint64_t RawBase(bench::DeviceStack& dev) {
  return dev.ssd->ftl().user_pages() - kRawSpan;
}

double MeasureOp(bench::DeviceStack& dev, const char* op, util::Xoshiro256& rng) {
  constexpr int kOps = 48;
  // Each op type works a disjoint quarter of the raw span so one phase's
  // writes/trims cannot change what another phase's reads observe.
  const std::uint64_t quarter = kRawSpan / 4;
  const std::uint64_t base = RawBase(dev);
  double total = 0;
  for (int i = 0; i < kOps; ++i) {
    nvme::Completion cqe;
    if (std::string_view(op) == "read4k") {
      auto buf = std::make_shared<std::vector<std::uint8_t>>(4096);
      cqe = dev.ssd->host_interface().ReadSync(base + rng.Below(quarter), 1, buf);
    } else if (std::string_view(op) == "write4k") {
      auto buf = std::make_shared<std::vector<std::uint8_t>>(4096, 0xAB);
      cqe = dev.ssd->host_interface().WriteSync(base + quarter + rng.Below(quarter), 1, buf);
    } else if (std::string_view(op) == "read128k") {
      auto buf = std::make_shared<std::vector<std::uint8_t>>(32 * 4096);
      cqe = dev.ssd->host_interface().ReadSync(
          base + 2 * quarter + rng.Below(quarter - 32), 32, buf);
    } else {  // trim
      cqe = dev.ssd->host_interface().TrimSync(base + 3 * quarter + rng.Below(quarter), 1);
    }
    if (!cqe.status.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", op, cqe.status.ToString().c_str());
      return 0;
    }
    total += cqe.latency;
  }
  return total / kOps * 1e6;  // us
}

int RunSingleDevicePhase(bench::BenchReport& report) {
  auto dev = bench::DeviceStack::Make(/*seed=*/5);
  if (!dev) return 1;

  // Stage the grind file through the filesystem first, then pre-write the
  // raw LBA range the IO measurements touch (top of the LBA space).
  workload::TextGenOptions text;
  text.approx_bytes = 512 * 1024;
  const std::string grind = workload::GenerateBookText(text);
  Status staged = dev->agent->filesystem().WriteFile("/grind.txt", grind);
  if (!staged.ok()) {
    std::fprintf(stderr, "staging failed: %s\n", staged.ToString().c_str());
    return 1;
  }
  {
    auto buf = std::make_shared<std::vector<std::uint8_t>>(4096, 0x11);
    const std::uint64_t base = RawBase(*dev);
    for (std::uint64_t lba = base; lba < base + kRawSpan; ++lba) {
      nvme::Completion c = dev->ssd->host_interface().WriteSync(lba, 1, buf);
      if (!c.status.ok()) {
        std::fprintf(stderr, "prefill failed: %s\n", c.status.ToString().c_str());
        return 1;
      }
    }
    // Drain the write buffer so the measured reads exercise the NAND path
    // rather than controller DRAM.
    if (!dev->ssd->ftl().Flush().ok()) return 1;
  }

  std::vector<LatencyRow> rows = {
      {"4K random read"}, {"4K random write"}, {"128K sequential read"}, {"trim"}};
  const char* ops[] = {"read4k", "write4k", "read128k", "trim"};

  util::Xoshiro256 rng(77);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].idle_us = MeasureOp(*dev, ops[i], rng);
  }

  // Saturate the ISPS: more concurrent compression minions than cores.
  std::vector<client::MinionFuture> background;
  for (int i = 0; i < 8; ++i) {
    proto::Command cmd;
    cmd.type = proto::CommandType::kShellCommand;
    cmd.command_line = "gzip -k -c /grind.txt | wc -c";
    background.push_back(dev->handle->SendMinion(cmd));
  }

  util::Xoshiro256 rng2(77);  // identical op sequence
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].busy_us = MeasureOp(*dev, ops[i], rng2);
  }
  for (auto& f : background) {
    auto m = f.Get();
    if (!m.ok()) std::fprintf(stderr, "background minion failed\n");
  }

  std::printf("%-24s %12s %12s %10s\n", "operation", "idle (us)", "busy (us)",
              "delta");
  const char* keys[] = {"read4k", "write4k", "read128k", "trim"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LatencyRow& r = rows[i];
    const double delta = r.idle_us > 0 ? (r.busy_us - r.idle_us) / r.idle_us * 100 : 0;
    std::printf("%-24s %12.1f %12.1f %+9.1f%%\n", r.name, r.idle_us, r.busy_us, delta);
    report.Metric(std::string(keys[i]) + ".idle_us", r.idle_us);
    report.Metric(std::string(keys[i]) + ".busy_us", r.busy_us);
  }
  std::printf("\nThe ISPS has its own cores and its own flash data path, so host\n"
              "IO latency is unchanged while 8 compression minions run — the\n"
              "paper's 'no degradation' design property.\n");
  return 0;
}

// --- Part 2: multi-tenant noisy neighbor across an 8-device cluster ---

constexpr std::uint32_t kInteractiveTenant = 1;
constexpr std::uint32_t kBulkTenant = 2;
constexpr std::uint32_t kBaselineTenant = 3;  // solo calibration stream
constexpr int kDevices = 8;
constexpr int kBulkWave = 128;       // queries per batch per submitter thread
constexpr int kBulkThreads = 12;     // closed loop: ~1.5k concurrent cluster-wide
constexpr int kInteractiveQueries = 96;  // 12 sequential probes per device
constexpr int kBaselineQueries = 32;
constexpr int kMaxBulkWaves = 64;  // per thread; hard cap so a wedged probe can't loop forever

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

// The SLO gate is the core scheduler's *bypass count*: how many queued items
// (any tenant) the device's core queue dispatched between an interactive
// probe's arrival and its own dispatch. This is the discipline's intrinsic
// signature and nothing else's — strict-priority fair queueing admits a
// just-arrived interactive item at the very next dispatch, so its bypass
// stays ~0 however deep the bulk backlog runs, while arrival-order FIFO
// serves the entire standing backlog first (bypass = backlog depth, tens to
// hundreds). Counting dispatches instead of clock deltas matters on an
// oversubscribed CI host: any latency formulation — wall or virtual — also
// integrates the bulk tenant's service charges that land while the probe
// merely resides in the queue, which inflates both arms alike and washes out
// the contrast. Task sojourn (queue wait + service on the executing core's
// virtual clock) is still measured and reported alongside as the
// latency-flavored view of the same effect.
struct SojournStats {
  double median_us = 0;  // max over devices of per-device p50
  double tail_us = 0;    // max over devices of per-device p95
  double worst_us = 0;   // max over devices of per-device max
};

SojournStats SojournOf(const std::vector<telemetry::MetricValue>& metrics,
                       std::uint32_t tenant, const char* field = "sojourn_us") {
  const std::string suffix =
      ".isps.tenant" + std::to_string(tenant) + "." + field;
  SojournStats s;
  for (const auto& m : metrics) {
    if (m.name.size() > suffix.size() &&
        m.name.compare(m.name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      s.median_us = std::max(s.median_us, m.p50);
      s.tail_us = std::max(s.tail_us, m.p95);
      s.worst_us = std::max(s.worst_us, m.max);
    }
  }
  return s;
}

std::vector<client::Cluster::WorkItem> BulkBatch(const std::vector<std::string>& files) {
  std::vector<client::Cluster::WorkItem> work;
  work.reserve(kBulkWave);
  for (int i = 0; i < kBulkWave; ++i) {
    proto::Command cmd;
    cmd.type = proto::CommandType::kShellCommand;
    cmd.command_line = "gzip -k -c " + files[static_cast<std::size_t>(i) % files.size()] +
                       " | wc -c";
    work.push_back({static_cast<std::size_t>(i % kDevices), cmd});
  }
  return work;
}

client::Cluster::WorkItem InteractiveProbe(const std::string& file, int i) {
  proto::Command cmd;
  cmd.type = proto::CommandType::kExecutable;
  cmd.executable = "grep";
  cmd.args = {"-c", "the", file};
  return {static_cast<std::size_t>(i % kDevices), cmd};
}

int RunNoisyNeighborPhase(bench::BenchReport& report, bool qos,
                          const std::string& series_path,
                          const std::string& slo_path) {
  bench::PrintHeader(qos ? "Noisy neighbor - weighted-fair QoS (default)"
                         : "Noisy neighbor - QoS disabled (--no-qos control arm)");

  // 8 devices, each staged with a small text corpus for both tenants.
  std::vector<std::unique_ptr<bench::DeviceStack>> devices;
  std::vector<std::string> files;
  client::Cluster cluster;
  for (int d = 0; d < kDevices; ++d) {
    auto dev = bench::DeviceStack::Make(/*seed=*/static_cast<std::uint64_t>(11 + d));
    if (!dev) return 1;
    // Small files keep one bulk task short, so the head-of-line blocking an
    // interactive probe can suffer behind a non-preemptible running task is
    // a fraction of the SLO — the discipline, not task granularity, decides.
    auto ds = bench::StageDataset(dev->agent->filesystem(), /*files=*/4,
                                  /*total_bytes=*/32 * 1024,
                                  /*seed=*/static_cast<std::uint64_t>(100 + d));
    if (ds.files.empty()) return 1;
    if (d == 0) {
      for (const auto& f : ds.files) files.push_back(f.path);
    }
    cluster.AddDevice(dev->handle.get());
    devices.push_back(std::move(dev));
  }

  client::ClusterPolicy policy;
  // Window wider than the bulk batch: the whole backlog lands device-side,
  // where the DRR arbiter and the core scheduler — the layers under test —
  // decide the order, rather than the frontier holding most of it back.
  policy.max_in_flight = 1536;
  cluster.set_policy(policy);
  cluster.SetTenantWeight(kInteractiveTenant, 8);
  if (!qos) {
    // The pre-QoS control arm: FIFO at the frontier, round-robin at every
    // device's arbiter and core scheduler.
    cluster.SetFairShare(false);
    for (auto& dev : devices) {
      dev->ssd->controller().SetQosArbitration(false);
      dev->agent->cores().SetQosScheduling(false);
    }
  }

  using Clock = std::chrono::steady_clock;
  auto run_probe = [&](int i, std::uint32_t tenant) -> double {
    const auto t0 = Clock::now();
    auto r = cluster.RunAll({InteractiveProbe(files[0], i)},
                            qos::TenantContext{tenant, qos::Priority::kInteractive});
    if (!r.ok()) {
      std::fprintf(stderr, "interactive probe failed: %s\n", r.status().ToString().c_str());
      return -1;
    }
    return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
  };

  // Solo calibration: the same probe stream alone on the idle cluster, under
  // its own tenant id so its sojourn histogram stays separate from the noisy
  // phase. The SLO is derived from it, so the check self-calibrates.
  std::vector<double> baseline_wall_us;
  for (int i = 0; i < kBaselineQueries; ++i) {
    const double us = run_probe(i, kBaselineTenant);
    if (us < 0) return 1;
    baseline_wall_us.push_back(us);
  }
  const auto metrics_before = cluster.CollectStats();
  const SojournStats solo = SojournOf(metrics_before, kBaselineTenant);

  // Fleet observability riding along: the monitor polls every device's
  // kStatsDelta series while the phase runs, evaluates the interactive
  // tenant's burn rate against a solo-derived budget, and dumps the series /
  // SLO artifacts next to the --json report. Informational here — the
  // bench's hard gate stays the bypass counts below — but the artifacts are
  // what a dashboard of this experiment would show.
  client::ClusterMonitor::Options mon_options;
  mon_options.interval = std::chrono::milliseconds(25);
  client::ClusterMonitor monitor(&cluster, mon_options);
  const double slo_threshold_us = std::max(6.0 * solo.tail_us, 1000.0);
  {
    telemetry::SloObjective slo;
    slo.name = "interactive-p99";
    slo.tenant_id = kInteractiveTenant;
    slo.kind = telemetry::SloObjective::Kind::kLatencyP99;
    slo.field = "isps.tenant" + std::to_string(kInteractiveTenant) + ".sojourn_us.p99";
    slo.threshold = slo_threshold_us;
    slo.objective = 0.95;
    slo.long_window_s = 1.0;
    slo.short_window_s = 0.25;
    slo.burn_alert = 2.0;
    monitor.device_slo().AddObjective(slo);
  }
  monitor.StartPolling();

  // Bulk tenant: a closed-loop load. Twelve submitter threads each keep a
  // 128-query batch outstanding and resubmit the moment it completes, so
  // ~1.5k bulk queries stay in flight cluster-wide for the whole probe
  // window. A closed loop (constant population) is the point: barriered
  // waves drain to zero between submissions, and a FIFO probe that arrives
  // in the gap measures an idle cluster. With the population pinned, the
  // backlog settles at the slowest stage — the device core schedulers, the
  // layer whose discipline is under test.
  std::atomic<bool> bulk_ok{true};
  std::atomic<bool> probes_done{false};
  std::atomic<int> bulk_waves{0};
  const auto bulk_start = Clock::now();
  std::vector<std::thread> bulk;
  for (int b = 0; b < kBulkThreads; ++b) {
    bulk.emplace_back([&] {
      for (int w = 0; w < kMaxBulkWaves && !probes_done.load(std::memory_order_relaxed);
           ++w) {
        auto r = cluster.RunAll(BulkBatch(files),
                                qos::TenantContext{kBulkTenant, qos::Priority::kBulk});
        if (!r.ok()) {
          std::fprintf(stderr, "bulk batch failed: %s\n", r.status().ToString().c_str());
          bulk_ok = false;
          return;
        }
        bulk_waves.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Launch the probes only once the backlog has actually reached the devices'
  // core schedulers — frontier stats count dispatched work, which says
  // nothing about where it is queued.
  auto device_backlog = [&] {
    std::size_t queued = 0;
    for (auto& dev : devices) {
      for (const auto& t : dev->agent->cores().TenantCounters()) queued += t.queued;
    }
    return queued;
  };
  auto outstanding = [&] {
    const auto s = cluster.FrontierStats();
    return s.queued + s.in_flight;
  };
  while (device_backlog() < static_cast<std::size_t>(kBulkWave) * 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Interactive tenant: one probe thread per device, racing the bulk drain
  // on that device. Concurrent probing matters: a sequential stream would
  // stall on the first congested device while every other device quietly
  // drained, and the remaining probes would measure an idle cluster.
  std::vector<std::vector<double>> per_thread_wall(kDevices);
  std::atomic<bool> probes_ok{true};
  {
    std::vector<std::thread> probers;
    for (int d = 0; d < kDevices; ++d) {
      probers.emplace_back([&, d] {
        for (int k = 0; k < kInteractiveQueries / kDevices; ++k) {
          const double us = run_probe(d, kInteractiveTenant);
          if (us < 0) {
            probes_ok = false;
            return;
          }
          per_thread_wall[static_cast<std::size_t>(d)].push_back(us);
        }
      });
    }
    for (auto& t : probers) t.join();
  }
  if (!probes_ok) {
    probes_done = true;
    for (auto& t : bulk) t.join();
    return 1;
  }
  std::vector<double> noisy_wall_us;
  for (const auto& v : per_thread_wall) {
    noisy_wall_us.insert(noisy_wall_us.end(), v.begin(), v.end());
  }
  // How much bulk work was still outstanding when the probe stream finished —
  // nonzero means the probes genuinely raced a saturated cluster.
  const std::uint64_t bulk_backlog_at_end = outstanding();
  const auto frontier_after_probes = cluster.FrontierStats();
  probes_done = true;
  for (auto& t : bulk) t.join();
  const double bulk_wall_s =
      std::chrono::duration<double>(Clock::now() - bulk_start).count();
  const int bulk_total = bulk_waves.load() * kBulkWave;
  if (!bulk_ok) return 1;

  monitor.StopPolling();
  monitor.PollOnce();  // final frame sees the workload's last samples

  const auto metrics = cluster.CollectStats();
  const SojournStats noisy = SojournOf(metrics, kInteractiveTenant);
  const SojournStats bulk_s = SojournOf(metrics, kBulkTenant);
  const SojournStats bulk_svc = SojournOf(metrics, kBulkTenant, "task_us");
  // Worst mean bypass of the interactive tenant across every queueing point
  // a query crosses — the frontier's admission queue (where the >1k-query
  // standing backlog lives), each device's NVMe arbiter virtual queues, and
  // each core scheduler. The SLO allows a small constant: Push/Pop races and
  // the unattributed housekeeping tenant sharing the interactive class can
  // slip a few dispatches ahead, but never the bulk backlog itself.
  double probe_bypass_mean = 0, probe_bypass_worst = 0, bulk_bypass_mean = 0;
  auto fold_counters = [&](const std::vector<qos::TenantCounters>& counters) {
    for (const auto& t : counters) {
      if (t.served == 0) continue;
      const double mean =
          static_cast<double>(t.bypass_total) / static_cast<double>(t.served);
      if (t.tenant_id == kInteractiveTenant) {
        probe_bypass_mean = std::max(probe_bypass_mean, mean);
        probe_bypass_worst =
            std::max(probe_bypass_worst, static_cast<double>(t.bypass_max));
      } else if (t.tenant_id == kBulkTenant) {
        bulk_bypass_mean = std::max(bulk_bypass_mean, mean);
      }
    }
  };
  fold_counters(cluster.FrontierTenantCounters());
  for (auto& dev : devices) {
    fold_counters(dev->ssd->controller().Stats().tenants);
    fold_counters(dev->agent->cores().TenantCounters());
  }
  const double slo_bypass = 8;  // ~2x cores of race slack, zero backlog terms
  const bool slo_met = probe_bypass_mean <= slo_bypass;

  std::printf("%-36s %14.0f us\n", "interactive solo median sojourn", solo.median_us);
  std::printf("%-36s %14.0f us\n", "interactive noisy median sojourn", noisy.median_us);
  std::printf("%-36s %14.0f us\n", "interactive noisy p95 sojourn", noisy.tail_us);
  std::printf("%-36s %14.0f us\n", "interactive noisy worst sojourn", noisy.worst_us);
  std::printf("%-36s %14.0f us\n", "bulk worst sojourn", bulk_s.worst_us);
  std::printf("%-36s %14.0f us\n", "bulk median service time", bulk_svc.median_us);
  std::printf("%-36s %14.1f\n", "interactive queue bypass (worst mean)", probe_bypass_mean);
  std::printf("%-36s %14.0f\n", "interactive queue bypass (worst)", probe_bypass_worst);
  std::printf("%-36s %14.1f\n", "bulk queue bypass (worst mean)", bulk_bypass_mean);
  std::printf("%-36s %14.0f\n", "SLO (mean interactive bypass <=)", slo_bypass);
  std::printf("%-36s %14s\n", "SLO met", slo_met ? "yes" : "NO");
  std::printf("%-36s %14.0f us\n", "interactive wall p50 (informational)",
              Percentile(noisy_wall_us, 0.50));
  std::printf("%-36s %14llu\n", "bulk backlog at probe end",
              static_cast<unsigned long long>(bulk_backlog_at_end));
  std::printf("%-36s %14d x %d\n", "bulk waves completed", bulk_waves.load(),
              kBulkWave);
  std::printf("%-36s %14.2f s\n", "bulk drain wall time", bulk_wall_s);
  std::printf("%-36s %14.1f q/s\n", "bulk throughput",
              static_cast<double>(bulk_total) / bulk_wall_s);

  report.Config("qos", qos ? 1.0 : 0.0);
  report.Config("devices", kDevices);
  report.Config("bulk_wave", kBulkWave);
  report.Config("bulk_threads", kBulkThreads);
  report.Config("interactive_queries", kInteractiveQueries);
  report.Config("max_in_flight", static_cast<double>(policy.max_in_flight));
  report.Metric("interactive.solo_median_sojourn_us", solo.median_us);
  report.Metric("interactive.noisy_median_sojourn_us", noisy.median_us);
  report.Metric("interactive.noisy_tail_sojourn_us", noisy.tail_us);
  report.Metric("interactive.noisy_worst_sojourn_us", noisy.worst_us);
  report.Metric("bulk.worst_sojourn_us", bulk_s.worst_us);
  report.Metric("bulk.median_task_us", bulk_svc.median_us);
  report.Metric("interactive.mean_bypass", probe_bypass_mean);
  report.Metric("interactive.worst_bypass", probe_bypass_worst);
  report.Metric("bulk.mean_bypass", bulk_bypass_mean);
  report.Metric("interactive.slo_bypass", slo_bypass);
  report.Metric("interactive.slo_met", slo_met ? 1.0 : 0.0);
  report.Metric("interactive.wall_p50_us", Percentile(noisy_wall_us, 0.50));
  report.Metric("interactive.solo_wall_p50_us", Percentile(baseline_wall_us, 0.50));
  report.Metric("bulk.waves", bulk_waves.load());
  report.Metric("bulk.total_queries", bulk_total);
  report.Metric("bulk.wall_s", bulk_wall_s);
  report.Metric("bulk.backlog_at_probe_end", static_cast<double>(bulk_backlog_at_end));
  report.Metric("frontier.peak_in_flight",
                static_cast<double>(frontier_after_probes.peak_in_flight));
  report.Telemetry(metrics);
  // What this phase did to the registry, as increments (schema v3).
  report.TelemetryDelta(metrics_before, metrics);

  // The monitor's verdict on the same run: burn state of the interactive
  // objective and how many health events fired.
  {
    const client::ClusterMonitor::Frame frame = monitor.Snapshot();
    double violating = 0, burn_long = 0;
    for (const auto& row : frame.slos) {
      if (row.state.objective.name == "interactive-p99") {
        violating = row.state.violating ? 1.0 : 0.0;
        burn_long = row.state.burn_long;
      }
    }
    std::size_t burn_events = 0;
    for (const auto& e : frame.events) {
      if (e.type == telemetry::HealthType::kSloBurnRate) ++burn_events;
    }
    std::printf("%-36s %14.0f us\n", "monitor SLO budget (p99 <=)", slo_threshold_us);
    std::printf("%-36s %14s\n", "monitor SLO violating", violating != 0 ? "YES" : "no");
    std::printf("%-36s %14zu\n", "monitor burn-rate events", burn_events);
    report.Metric("monitor.slo_threshold_us", slo_threshold_us);
    report.Metric("monitor.slo_violating", violating);
    report.Metric("monitor.slo_burn_long", burn_long);
    report.Metric("monitor.burn_events", static_cast<double>(burn_events));
    report.Metric("monitor.polls", static_cast<double>(frame.polls));
    auto write_artifact = [](const std::string& path, const std::string& text) {
      if (path.empty()) return;
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "isolation: cannot open %s\n", path.c_str());
        return;
      }
      std::fputs(text.c_str(), f);
      std::fclose(f);
      std::printf("[--series/--slo] wrote %s\n", path.c_str());
    };
    write_artifact(series_path, monitor.SeriesJson());
    write_artifact(slo_path, monitor.SloReportJson());
  }

  if (qos && !slo_met) {
    std::fprintf(stderr, "FAIL: interactive core bypass violated the SLO with QoS on\n");
    return 1;
  }
  if (!qos && slo_met) {
    // The control arm is *expected* to violate — note it but don't fail the
    // bench, since a fast machine can drain the backlog under the floor.
    std::printf("\nnote: control arm met the SLO on this host (bulk drained fast)\n");
  }
  std::printf(qos ? "\nWith weighted-fair scheduling from frontier to flash, the\n"
                    "interactive tenant's latency holds while the bulk tenant keeps\n"
                    "the whole cluster saturated.\n"
                  : "\nWithout QoS the interactive probes queue behind the bulk\n"
                    "backlog in arrival order — the isolation the paper's shared\n"
                    "deployment needs is gone.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("isolation", argc, argv);
  bool qos = true;
  std::string series_path, slo_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-qos") == 0) {
      qos = false;
    } else if (std::strcmp(argv[i], "--series") == 0 && i + 1 < argc) {
      series_path = argv[++i];
    } else if (std::strcmp(argv[i], "--slo") == 0 && i + 1 < argc) {
      slo_path = argv[++i];
    }
  }

  bench::PrintHeader(
      "Isolation - host IO performance with and without in-situ load");
  if (int rc = RunSingleDevicePhase(report); rc != 0) return rc;
  // Write the report even when the SLO check fails — the violating numbers
  // are exactly what the perf trajectory needs to show.
  const int rc = RunNoisyNeighborPhase(report, qos, series_path, slo_path);
  if (!report.Write()) return 1;
  return rc;
}
