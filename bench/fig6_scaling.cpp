// Reproduces Fig 6: in-storage computation performance scales linearly with
// the number of CompStor devices.
//
// A fixed corpus is partitioned across N devices (N = 1, 2, 4, 8); every
// device processes its share with concurrent minions on its four A53 cores.
// Aggregate throughput = total input bytes / cluster makespan. Linear
// scaling appears because each device owns its data and its compute — the
// architectural point of the paper.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness.hpp"

namespace {

using namespace compstor;

// Many more files than cores x devices, like the paper's 348-book corpus:
// scaling needs fine-grained work or the makespan floors at one file.
constexpr std::uint32_t kFilesTotal = 128;
constexpr std::uint64_t kTotalBytes = 8ull << 20;  // 8 MiB corpus (scaled)
const std::vector<std::size_t> kDeviceCounts = {1, 2, 4, 8};
const std::vector<std::string> kApps = {"grep", "gawk", "gzip", "bzip2"};

/// Runs `app` over the corpus partitioned across `n` devices; returns
/// aggregate MB/s (model time).
double RunScaled(const std::string& app, std::size_t n) {
  // Fresh devices per run: meters and datasets start clean.
  std::vector<std::unique_ptr<bench::DeviceStack>> devices;
  for (std::size_t d = 0; d < n; ++d) {
    auto dev = bench::DeviceStack::Make(/*seed=*/100 + d);
    if (!dev) return 0;
    devices.push_back(std::move(dev));
  }

  // Partition the corpus: files round-robin across devices; each device
  // stages only its share (file sizes are uniform to keep partitions even).
  std::uint64_t total_input = 0;
  std::vector<std::vector<std::string>> paths(n);
  for (std::size_t d = 0; d < n; ++d) {
    workload::DatasetSpec spec;
    spec.num_files = static_cast<std::uint32_t>(kFilesTotal / n);
    spec.total_bytes = kTotalBytes / n;
    spec.seed = 500 + d;
    spec.uniform_sizes = true;
    spec.directory = "/data";
    auto ds = workload::BuildDataset(&devices[d]->agent->filesystem(), spec);
    if (!ds.ok()) return 0;
    for (const auto& f : ds->files) {
      paths[d].push_back(f.path);
      total_input += f.stored_bytes;
    }
  }

  // Launch every file's minion concurrently on its device.
  for (auto& dev : devices) dev->ResetMeters();
  std::vector<client::MinionFuture> futures;
  for (std::size_t d = 0; d < n; ++d) {
    for (const std::string& path : paths[d]) {
      futures.push_back(devices[d]->handle->SendMinion(bench::MakeAppCommand(app, path)));
    }
  }
  for (auto& f : futures) {
    auto m = f.Get();
    if (!m.ok() || !m->response.ok()) {
      std::fprintf(stderr, "task failed on %s\n", app.c_str());
      return 0;
    }
  }

  // Cluster makespan: the slowest device's core-cluster makespan.
  double makespan = 0;
  for (auto& dev : devices) {
    makespan = std::max(makespan, dev->agent->cores().Makespan());
  }
  return makespan > 0 ? static_cast<double>(total_input) / 1e6 / makespan : 0;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig 6 - Performance scales linearly with the number of CompStors");
  std::printf("Aggregate throughput (model MB/s) on an %.0f MiB corpus:\n\n",
              static_cast<double>(kTotalBytes) / (1 << 20));

  std::printf("%-8s", "devices");
  for (const auto& app : kApps) std::printf(" %9s %8s", app.c_str(), "(x)");
  std::printf("\n");

  std::vector<double> base(kApps.size(), 0);
  for (std::size_t n : kDeviceCounts) {
    std::printf("%-8zu", n);
    for (std::size_t a = 0; a < kApps.size(); ++a) {
      const double mbps = RunScaled(kApps[a], n);
      if (n == kDeviceCounts.front()) base[a] = mbps;
      const double speedup = base[a] > 0 ? mbps / base[a] : 0;
      std::printf(" %9.1f %7.2fx", mbps, speedup);
    }
    std::printf("\n");
  }
  std::printf("\nSpeedup column is relative to 1 device; the paper's Fig 6 reports\n"
              "the same linear trend as capacity (and with it compute) grows.\n");
  return 0;
}
