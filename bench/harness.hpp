// Shared experiment harness for the paper-reproduction benches.
//
// Builds device stacks (SSD + agent + client handle), stages datasets,
// runs workloads sequentially (Fig 8's single-stream setup) or in parallel
// (Fig 6/7's scaling setup), and aggregates time + energy the way the paper
// reports them.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "client/cluster.hpp"
#include "client/in_situ.hpp"
#include "host/executor.hpp"
#include "isps/agent.hpp"
#include "isps/profile.hpp"
#include "ssd/profiles.hpp"
#include "ssd/ssd.hpp"
#include "telemetry/metrics.hpp"
#include "workload/dataset.hpp"

namespace compstor::bench {

/// Machine-readable bench output, the perf-trajectory file format.
///
/// Every bench constructs one of these from argv; `--json [path]` enables it
/// (default path `BENCH_<name>.json` in the working directory). Without the
/// flag every call is a no-op, so benches report unconditionally and the
/// human-readable tables stay the default output.
///
/// The file is one JSON object: {"schema_version": N, "name": ...,
/// "bench": ..., "git": ..., "config": {...}, "metrics": {...},
/// "telemetry": {...}} — config holds the knobs the run was shaped by,
/// metrics the numbers the bench's printed table reports, and telemetry an
/// optional registry snapshot (telemetry::MetricsToJson form). `git` is the
/// `git describe` of the tree the binary was built from, so every
/// perf-trajectory point is traceable to a commit.
class BenchReport {
 public:
  /// Bump when the file shape changes; consumers gate parsing on this.
  /// v2 added schema_version / bench / git provenance fields; v3 added the
  /// optional registry_delta section (TelemetryDelta).
  static constexpr int kSchemaVersion = 3;
  BenchReport(std::string name, int argc, char** argv) : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      if (std::string_view(argv[i]) == "--json") {
        enabled_ = true;
        if (i + 1 < argc && argv[i + 1][0] != '-') path_ = argv[++i];
      }
    }
    if (enabled_ && path_.empty()) path_ = "BENCH_" + name_ + ".json";
  }

  bool enabled() const { return enabled_; }
  const std::string& path() const { return path_; }

  void Config(const std::string& key, double value) {
    if (enabled_) config_.emplace_back(key, Number(value));
  }
  void Config(const std::string& key, const std::string& value) {
    if (enabled_) config_.emplace_back(key, "\"" + Escape(value) + "\"");
  }
  void Metric(const std::string& key, double value) {
    if (enabled_) metrics_.emplace_back(key, Number(value));
  }
  /// Attaches a registry snapshot (device- or cluster-wide) verbatim.
  void Telemetry(const std::vector<telemetry::MetricValue>& metrics) {
    if (enabled_) telemetry_json_ = telemetry::MetricsToJson(metrics);
  }

  /// Attaches what the measured phase *did* to the registry: counters as
  /// increments, histograms as count/sum increments (same ".count"/".sum"
  /// column expansion the time-series plane uses), gauges as their final
  /// reading when it moved. Unchanged metrics are dropped, so the section
  /// reads as "this phase's footprint" rather than a second full snapshot.
  void TelemetryDelta(const std::vector<telemetry::MetricValue>& before,
                      const std::vector<telemetry::MetricValue>& after) {
    if (!enabled_) return;
    std::map<std::string, const telemetry::MetricValue*> prior;
    for (const auto& m : before) prior[m.name] = &m;
    std::vector<std::pair<std::string, std::string>> rows;
    for (const auto& m : after) {
      const auto it = prior.find(m.name);
      const telemetry::MetricValue* b = it != prior.end() ? it->second : nullptr;
      switch (m.kind) {
        case telemetry::MetricKind::kCounter: {
          const double d = m.value - (b != nullptr ? b->value : 0);
          if (d != 0) rows.emplace_back(m.name, Number(d));
          break;
        }
        case telemetry::MetricKind::kGauge:
          if (b == nullptr || m.value != b->value) {
            rows.emplace_back(m.name, Number(m.value));
          }
          break;
        case telemetry::MetricKind::kHistogram: {
          const double dc =
              static_cast<double>(m.count) - (b != nullptr ? static_cast<double>(b->count) : 0);
          const double ds = m.sum - (b != nullptr ? b->sum : 0);
          if (dc != 0) {
            rows.emplace_back(m.name + ".count", Number(dc));
            rows.emplace_back(m.name + ".sum", Number(ds));
          }
          break;
        }
      }
    }
    registry_delta_json_ = "{";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      registry_delta_json_ += (i ? ", " : "") + ("\"" + Escape(rows[i].first) +
                              "\": " + rows[i].second);
    }
    registry_delta_json_ += "}";
  }

  /// Writes the file (no-op without --json). Returns false on IO error.
  bool Write() const {
    if (!enabled_) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchReport: cannot open %s\n", path_.c_str());
      return false;
    }
#ifdef COMPSTOR_GIT_DESCRIBE
    const char* git = COMPSTOR_GIT_DESCRIBE;
#else
    const char* git = "unknown";
#endif
    std::fprintf(f,
                 "{\n  \"schema_version\": %d,\n  \"name\": \"%s\",\n"
                 "  \"bench\": \"%s\",\n  \"git\": \"%s\",\n  \"config\": {",
                 kSchemaVersion, Escape(name_).c_str(), Escape(name_).c_str(),
                 Escape(git).c_str());
    WriteSection(f, config_);
    std::fprintf(f, "},\n  \"metrics\": {");
    WriteSection(f, metrics_);
    std::fprintf(f, "}");
    if (!telemetry_json_.empty()) {
      std::fprintf(f, ",\n  \"telemetry\": %s", telemetry_json_.c_str());
    }
    if (!registry_delta_json_.empty()) {
      std::fprintf(f, ",\n  \"registry_delta\": %s", registry_delta_json_.c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("\n[--json] wrote %s\n", path_.c_str());
    return true;
  }

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  static std::string Number(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
  }
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
        continue;
      }
      out += c;
    }
    return out;
  }
  static void WriteSection(std::FILE* f, const Fields& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %s", i ? "," : "",
                   Escape(fields[i].first).c_str(), fields[i].second.c_str());
    }
    if (!fields.empty()) std::fprintf(f, "\n  ");
  }

  std::string name_;
  bool enabled_ = false;
  std::string path_;
  Fields config_;
  Fields metrics_;
  std::string telemetry_json_;
  std::string registry_delta_json_;
};

/// One CompStor device with its agent and a client handle, ready to use.
struct DeviceStack {
  std::unique_ptr<ssd::Ssd> ssd;
  std::unique_ptr<isps::Agent> agent;
  std::unique_ptr<client::CompStorHandle> handle;

  static std::unique_ptr<DeviceStack> Make(std::uint64_t seed = 1,
                                           double capacity_scale = 0.0015) {
    auto stack = std::make_unique<DeviceStack>();
    stack->ssd = std::make_unique<ssd::Ssd>(ssd::CompStorProfile(capacity_scale), seed);
    stack->agent = std::make_unique<isps::Agent>(stack->ssd.get());
    stack->handle = std::make_unique<client::CompStorHandle>(stack->ssd.get());
    if (!stack->handle->FormatFilesystem().ok()) return nullptr;
    return stack;
  }

  /// Clears energy meters and virtual clocks before a measured phase.
  void ResetMeters() {
    ssd->meter().Reset();
    ssd->link().ResetStats();
    agent->cores().ResetClocks();
  }
};

/// The host baseline: an off-the-shelf SSD driven by the Xeon executor.
struct HostStack {
  std::unique_ptr<ssd::Ssd> ssd;
  std::unique_ptr<host::HostExecutor> exec;

  static std::unique_ptr<HostStack> Make(std::uint64_t seed = 1,
                                         double capacity_scale = 0.01) {
    auto stack = std::make_unique<HostStack>();
    stack->ssd = std::make_unique<ssd::Ssd>(ssd::OffTheShelfProfile(capacity_scale), seed);
    stack->exec = std::make_unique<host::HostExecutor>(stack->ssd.get());
    if (!stack->exec->FormatFilesystem().ok()) return nullptr;
    return stack;
  }

  void ResetMeters() {
    ssd->meter().Reset();
    ssd->link().ResetStats();
    exec->meter().Reset();
    exec->cores().ResetClocks();
  }
};

/// Aggregated measurement of one experiment phase.
struct Measured {
  double makespan_s = 0;      // virtual seconds end to end
  double active_j = 0;        // task-attributed energy (CPU + datapath)
  double baseline_j = 0;      // platform idle power x makespan
  double storage_j = 0;       // NAND + controller + PCIe traversal
  std::uint64_t input_bytes = 0;

  double TotalJoules() const { return active_j + baseline_j + storage_j; }
  double JoulesPerGB() const {
    return input_bytes == 0 ? 0 : TotalJoules() / (static_cast<double>(input_bytes) / 1e9);
  }
  double ThroughputMBps() const {
    return makespan_s <= 0 ? 0 : static_cast<double>(input_bytes) / 1e6 / makespan_s;
  }
};

inline double StorageJoules(ssd::Ssd& ssd) {
  return ssd.meter().Joules(energy::Component::kFlash) +
         ssd.meter().Joules(energy::Component::kController) +
         ssd.meter().Joules(energy::Component::kLink);
}

/// Runs the commands one at a time on the device (Fig 8's single-stream
/// regime); `input_bytes` is the stored size of the files each command reads.
inline Measured RunDeviceSequential(DeviceStack& dev,
                                    const std::vector<proto::Command>& commands,
                                    std::uint64_t input_bytes) {
  dev.ResetMeters();
  Measured m;
  m.input_bytes = input_bytes;
  for (const proto::Command& cmd : commands) {
    auto minion = dev.handle->RunMinion(cmd);
    if (!minion.ok() || !minion->response.ok()) {
      std::fprintf(stderr, "device task failed: %s %s\n",
                   minion.ok() ? minion->response.status_message.c_str()
                               : minion.status().ToString().c_str(),
                   cmd.executable.c_str());
      continue;
    }
    m.makespan_s += minion->response.elapsed_s();
    m.active_j += minion->response.energy_joules;
  }
  m.baseline_j = isps::IspsCpuProfile().package_idle_watts * m.makespan_s;
  m.storage_j = StorageJoules(*dev.ssd);
  return m;
}

/// Same single-stream regime on the host baseline.
inline Measured RunHostSequential(HostStack& host,
                                  const std::vector<proto::Command>& commands,
                                  std::uint64_t input_bytes) {
  host.ResetMeters();
  Measured m;
  m.input_bytes = input_bytes;
  for (const proto::Command& cmd : commands) {
    proto::Response r = host.exec->Run(cmd);
    if (!r.ok()) {
      std::fprintf(stderr, "host task failed: %s\n", r.status_message.c_str());
      continue;
    }
    m.makespan_s += r.elapsed_s();
    m.active_j += r.energy_joules;
  }
  m.baseline_j = host.exec->profile().package_idle_watts * m.makespan_s;
  m.storage_j = StorageJoules(*host.ssd);
  return m;
}

/// Stages a plain-text dataset and returns it.
inline workload::Dataset StageDataset(fs::Filesystem& fs, std::uint32_t files,
                                      std::uint64_t total_bytes, std::uint64_t seed,
                                      workload::StoredFormat format =
                                          workload::StoredFormat::kPlain,
                                      const std::string& dir = "/data") {
  workload::DatasetSpec spec;
  spec.num_files = files;
  spec.total_bytes = total_bytes;
  spec.seed = seed;
  spec.format = format;
  spec.directory = dir;
  auto ds = workload::BuildDataset(&fs, spec);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset staging failed: %s\n", ds.status().ToString().c_str());
    return {};
  }
  return *ds;
}

/// Command factory for the standard workloads over one file.
inline proto::Command MakeAppCommand(const std::string& app, const std::string& path) {
  proto::Command cmd;
  cmd.type = proto::CommandType::kExecutable;
  cmd.executable = app;
  if (app == "grep") {
    cmd.args = {"-c", "the", path};
  } else if (app == "gawk") {
    cmd.args = {"{ words += NF } END { print words }", path};
  } else if (app == "gzip" || app == "bzip2") {
    cmd.args = {path};
  } else if (app == "gunzip" || app == "bunzip2") {
    cmd.args = {path};
  } else {
    cmd.args = {path};
  }
  cmd.input_files = {path};
  return cmd;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace compstor::bench
