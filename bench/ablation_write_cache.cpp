// Ablation of the controller's fast-release host data buffer (paper §III.A
// lists it among the "common subsystems necessary for ... an enterprise-
// grade SSD").
//
// Sweeps the write-cache size and reports the host-visible 4 KiB write
// latency for a bursty workload plus the write amplification the cache's
// coalescing saves on a hot working set.
#include <cstdio>
#include <memory>
#include <vector>

#include "ssd/profiles.hpp"
#include "ssd/ssd.hpp"
#include "util/rng.hpp"

namespace {

using namespace compstor;

struct Point {
  double avg_write_us = 0;
  double waf = 0;
  std::uint64_t nand_programs = 0;
};

Point Measure(std::uint32_t cache_pages) {
  ssd::SsdProfile profile = ssd::TestProfile();
  profile.ftl.write_cache_pages = cache_pages;
  ssd::Ssd device(profile);

  // Bursty hot-set workload: 4096 writes over a 256-page working set.
  util::Xoshiro256 rng(13);
  auto buf = std::make_shared<std::vector<std::uint8_t>>(4096, 0x42);
  double total_latency = 0;
  constexpr int kWrites = 4096;
  for (int i = 0; i < kWrites; ++i) {
    const std::uint64_t lba = rng.Below(256);
    nvme::Completion cqe = device.host_interface().WriteSync(lba, 1, buf);
    if (!cqe.status.ok()) {
      std::fprintf(stderr, "write failed: %s\n", cqe.status.ToString().c_str());
      return {};
    }
    total_latency += cqe.latency;
  }
  // Durability point: flush whatever is still buffered.
  nvme::Command flush;
  flush.opcode = nvme::Opcode::kFlush;
  (void)device.host_interface().Submit(std::move(flush)).get();

  Point p;
  p.avg_write_us = total_latency / kWrites * 1e6;
  const auto stats = device.ftl().Stats();
  p.waf = static_cast<double>(stats.flash_programs) / kWrites;
  p.nand_programs = stats.flash_programs;
  return p;
}

}  // namespace

int main() {
  std::printf("\n================================================================\n");
  std::printf("Ablation - fast-release host write buffer\n");
  std::printf("================================================================\n");
  std::printf("4096 x 4KiB writes over a 256-page hot set, then flush:\n\n");
  std::printf("%-22s %16s %18s %12s\n", "cache size", "avg latency (us)",
              "NAND programs", "programs/write");
  for (std::uint32_t pages : {0u, 64u, 512u, 2048u}) {
    Point p = Measure(pages);
    char label[32];
    if (pages == 0) {
      std::snprintf(label, sizeof(label), "off (write-through)");
    } else {
      std::snprintf(label, sizeof(label), "%u pages (%u KiB)", pages, pages * 4);
    }
    std::printf("%-22s %16.1f %18llu %12.3f\n", label, p.avg_write_us,
                static_cast<unsigned long long>(p.nand_programs), p.waf);
  }
  std::printf("\nThe buffer releases host writes at DRAM speed and coalesces hot\n"
              "pages, so NAND sees a fraction of the traffic. A cache covering\n"
              "the working set absorbs nearly everything until the flush.\n");
  return 0;
}
