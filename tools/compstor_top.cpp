// compstor-top: live fleet dashboard over the ClusterMonitor.
//
// Builds an emulated cluster, drives a scaled-down version of the isolation
// bench's noisy-neighbor workload across it (a bulk compression tenant
// saturating the devices while an interactive grep tenant probes), and shows
// what the observability stack sees: per-device utilization and rates from
// the kStatsDelta series, per-tenant SLO burn rates, and health events.
//
// The interactive SLO self-calibrates: a short solo probe stream runs first,
// and the latency budget is 10x its measured p99 (min 1ms), so QoS-on runs
// stay green and `--no-qos` runs visibly burn — the same contrast the
// isolation bench asserts, rendered live.
//
// Usage:
//   compstor_top                         live dashboard for --duration secs
//   compstor_top --once --json           one frame as JSON (scripting / CI)
//   compstor_top --openmetrics           OpenMetrics scrape of the cluster
//   --devices N   cluster size                (default 2)
//   --duration S  workload wall seconds       (default 1.5)
//   --interval MS dashboard refresh           (default 250)
//   --no-qos      FIFO control arm (expect the SLO to burn)
//   --slo-us X    fixed latency budget instead of self-calibration
//   --out PATH    write the final frame/scrape to PATH instead of stdout
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/cluster.hpp"
#include "client/in_situ.hpp"
#include "client/monitor.hpp"
#include "common/qos.hpp"
#include "isps/agent.hpp"
#include "ssd/profiles.hpp"
#include "ssd/ssd.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace compstor;

struct Device {
  std::unique_ptr<ssd::Ssd> ssd;
  std::unique_ptr<isps::Agent> agent;
  std::unique_ptr<client::CompStorHandle> handle;
};

constexpr std::uint32_t kInteractiveTenant = 1;
constexpr std::uint32_t kBulkTenant = 2;
constexpr std::uint32_t kCalibrationTenant = 3;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--devices N] [--duration S] [--interval MS] "
               "[--no-qos] [--once] [--json] [--openmetrics] [--slo-us X] "
               "[--out PATH]\n",
               argv0);
  return 2;
}

proto::Command GrepProbe(const std::string& file) {
  proto::Command cmd;
  cmd.type = proto::CommandType::kExecutable;
  cmd.executable = "grep";
  cmd.args = {"-c", "the", file};
  return cmd;
}

double SoloP99Us(const std::vector<telemetry::MetricValue>& metrics) {
  const std::string suffix =
      ".isps.tenant" + std::to_string(kCalibrationTenant) + ".sojourn_us";
  double p99 = 0;
  for (const auto& m : metrics) {
    if (m.name.size() > suffix.size() &&
        m.name.compare(m.name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      p99 = std::max(p99, m.p99);
    }
  }
  return p99;
}

bool WriteOut(const std::string& path, const std::string& text) {
  if (path.empty()) {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "compstor_top: cannot open %s\n", path.c_str());
    return false;
  }
  std::fputs(text.c_str(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int num_devices = 2;
  double duration_s = 1.5;
  int interval_ms = 250;
  bool qos = true;
  bool once = false;
  bool as_json = false;
  bool openmetrics = false;
  double slo_us = 0;  // 0: self-calibrate
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--devices") {
      const char* v = next();
      if (v == nullptr || (num_devices = std::atoi(v)) < 1) return Usage(argv[0]);
    } else if (arg == "--duration") {
      const char* v = next();
      if (v == nullptr || (duration_s = std::atof(v)) <= 0) return Usage(argv[0]);
    } else if (arg == "--interval") {
      const char* v = next();
      if (v == nullptr || (interval_ms = std::atoi(v)) < 1) return Usage(argv[0]);
    } else if (arg == "--slo-us") {
      const char* v = next();
      if (v == nullptr || (slo_us = std::atof(v)) <= 0) return Usage(argv[0]);
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      out_path = v;
    } else if (arg == "--no-qos") {
      qos = false;
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--openmetrics") {
      openmetrics = true;
    } else {
      return Usage(argv[0]);
    }
  }

  // --- cluster setup: N devices, each with a small staged text corpus ---
  std::vector<Device> devices(static_cast<std::size_t>(num_devices));
  std::vector<std::string> files;
  client::Cluster cluster;
  for (int d = 0; d < num_devices; ++d) {
    Device& dev = devices[static_cast<std::size_t>(d)];
    dev.ssd = std::make_unique<ssd::Ssd>(ssd::CompStorProfile(0.0015),
                                         static_cast<std::uint64_t>(11 + d));
    dev.agent = std::make_unique<isps::Agent>(dev.ssd.get());
    dev.handle = std::make_unique<client::CompStorHandle>(dev.ssd.get());
    if (!dev.handle->FormatFilesystem().ok()) {
      std::fprintf(stderr, "compstor_top: format failed on device %d\n", d);
      return 1;
    }
    workload::DatasetSpec spec;
    spec.num_files = 4;
    spec.total_bytes = 32 * 1024;
    spec.seed = static_cast<std::uint64_t>(100 + d);
    auto ds = workload::BuildDataset(&dev.agent->filesystem(), spec);
    if (!ds.ok()) {
      std::fprintf(stderr, "compstor_top: staging failed: %s\n",
                   ds.status().ToString().c_str());
      return 1;
    }
    if (d == 0) {
      for (const auto& f : ds->files) files.push_back(f.path);
    }
    cluster.AddDevice(dev.handle.get());
  }

  client::ClusterPolicy policy;
  policy.max_in_flight = static_cast<std::size_t>(64 * num_devices);
  cluster.set_policy(policy);
  cluster.SetTenantWeight(kInteractiveTenant, 8);
  if (!qos) {
    cluster.SetFairShare(false);
    for (auto& dev : devices) {
      dev.ssd->controller().SetQosArbitration(false);
      dev.agent->cores().SetQosScheduling(false);
    }
  }

  auto probe = [&](std::size_t d, std::uint32_t tenant) {
    return cluster.RunAll({{d, GrepProbe(files[d % files.size()])}},
                          qos::TenantContext{tenant, qos::Priority::kInteractive});
  };

  // --- SLO calibration: solo probes on the idle cluster ---
  if (slo_us <= 0) {
    for (int i = 0; i < 4 * num_devices; ++i) {
      auto r = probe(static_cast<std::size_t>(i) % devices.size(), kCalibrationTenant);
      if (!r.ok()) {
        std::fprintf(stderr, "compstor_top: calibration probe failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
    }
    slo_us = std::max(10.0 * SoloP99Us(cluster.CollectStats()), 1000.0);
  }

  client::ClusterMonitor::Options mon_options;
  mon_options.interval = std::chrono::milliseconds(25);
  mon_options.health_window_s = 2.0;
  client::ClusterMonitor monitor(&cluster, mon_options);
  telemetry::SloObjective slo;
  slo.name = "interactive-p99";
  slo.tenant_id = kInteractiveTenant;
  slo.kind = telemetry::SloObjective::Kind::kLatencyP99;
  slo.field = "isps.tenant" + std::to_string(kInteractiveTenant) + ".sojourn_us.p99";
  slo.threshold = slo_us;
  slo.objective = 0.95;
  slo.long_window_s = 1.0;
  slo.short_window_s = 0.25;
  slo.burn_alert = 2.0;
  monitor.device_slo().AddObjective(slo);

  // --- the workload: bulk closed loop + interactive probes ---
  std::atomic<bool> stop{false};
  std::atomic<bool> workload_ok{true};
  std::vector<std::thread> workers;
  const int bulk_threads = 3;
  const int wave = 16 * num_devices;
  for (int b = 0; b < bulk_threads; ++b) {
    workers.emplace_back([&] {
      // Closed loop: resubmit the wave the moment it drains, so the backlog
      // stays pinned at the device schedulers while the probes race it.
      for (int w = 0; w < 256 && !stop.load(std::memory_order_relaxed); ++w) {
        std::vector<client::Cluster::WorkItem> work;
        for (int i = 0; i < wave; ++i) {
          proto::Command cmd;
          cmd.type = proto::CommandType::kShellCommand;
          cmd.command_line = "gzip -k -c " +
                             files[static_cast<std::size_t>(i) % files.size()] +
                             " | wc -c";
          work.push_back({static_cast<std::size_t>(i % num_devices), cmd});
        }
        auto r = cluster.RunAll(work, qos::TenantContext{kBulkTenant,
                                                         qos::Priority::kBulk});
        if (!r.ok()) {
          workload_ok = false;
          return;
        }
      }
    });
  }
  for (int d = 0; d < num_devices; ++d) {
    workers.emplace_back([&, d] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = probe(static_cast<std::size_t>(d), kInteractiveTenant);
        if (!r.ok()) {
          workload_ok = false;
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  monitor.StartPolling();
  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  if (!once && !openmetrics && !as_json && out_path.empty()) {
    // Live mode: redraw the dashboard until the duration elapses.
    while (elapsed() < duration_s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      std::printf("\x1b[2J\x1b[H%s",
                  client::ClusterMonitor::RenderTop(monitor.Snapshot()).c_str());
      std::fflush(stdout);
    }
  } else {
    while (elapsed() < duration_s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  stop = true;
  for (auto& t : workers) t.join();
  monitor.StopPolling();
  monitor.PollOnce();  // final frame sees the workload's last samples

  std::string text;
  if (openmetrics) {
    text = monitor.ToOpenMetrics();
  } else {
    const client::ClusterMonitor::Frame frame = monitor.Snapshot();
    text = as_json ? client::ClusterMonitor::ToJson(frame)
                   : client::ClusterMonitor::RenderTop(frame);
    if (as_json) text += "\n";
  }
  if (!WriteOut(out_path, text)) return 1;
  return workload_ok.load() ? 0 : 1;
}
