// trace_analyze: offline critical-path analyzer for stitched CompStor
// cluster traces.
//
// Reads a merged Chrome trace_event JSON (as written by
// telemetry::MergeChromeTraceJson — e.g. `distributed_search --trace run.json`
// or Cluster::StitchedTraceJson), rebuilds each query's span tree from the
// propagated trace contexts (args.query/span/parent), and reports per query:
// the end-to-end time, the critical path through the cluster, and self-time
// split into host+wire / dispatch / compute / io / flash / respond buckets.
//
// Usage:
//   trace_analyze <trace.json>            human-readable report to stdout
//   trace_analyze --json <trace.json>     machine-readable report (CI artifact)
//   trace_analyze --check <trace.json>    exit non-zero unless every query has
//                                         a non-empty critical path and zero
//                                         unresolved parent links (CI smoke)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/analyze.hpp"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--json|--check] <trace.json>\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool as_json = false;
  bool check = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (path == nullptr) return Usage(argv[0]);

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_analyze: cannot open %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (buf.str().empty()) {
    std::fprintf(stderr, "trace_analyze: %s is empty\n", path);
    return 1;
  }

  using namespace compstor::telemetry;
  const std::vector<StitchedEvent> events = ParseChromeTraceJson(buf.str());
  if (events.empty()) {
    // Garbage in should never report success: an unparseable trace yields an
    // empty event list, which previously printed a vacuous report and exited 0.
    std::fprintf(stderr,
                 "trace_analyze: no trace events parsed from %s "
                 "(not a Chrome trace_event JSON?)\n",
                 path);
    return 1;
  }
  const ClusterTraceReport report = AnalyzeTrace(events);

  if (check) {
    // CI smoke: the trace must contain tagged work, every query's parent
    // links must resolve, and every query must yield a critical path.
    if (report.tagged_events == 0) {
      std::fprintf(stderr, "trace_analyze: no tagged spans in %s\n", path);
      return 1;
    }
    if (report.queries.empty()) {
      std::fprintf(stderr, "trace_analyze: no queries reconstructed\n");
      return 1;
    }
    int rc = 0;
    for (const QueryTrace& q : report.queries) {
      if (q.critical_path.empty()) {
        std::fprintf(stderr, "trace_analyze: query %llu has no critical path\n",
                     static_cast<unsigned long long>(q.query_id));
        rc = 1;
      }
      if (q.unresolved_parents != 0) {
        std::fprintf(stderr,
                     "trace_analyze: query %llu has %zu unresolved parents\n",
                     static_cast<unsigned long long>(q.query_id),
                     q.unresolved_parents);
        rc = 1;
      }
    }
    if (rc == 0) {
      std::printf("trace_analyze: OK (%zu queries, %zu tagged spans, "
                  "makespan %.6f s)\n",
                  report.queries.size(), report.tagged_events,
                  report.makespan_s);
    }
    return rc;
  }

  const std::string out = as_json ? ReportToJson(report) : ReportToText(report);
  std::fputs(out.c_str(), stdout);
  return 0;
}
